package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	for _, p := range payloads {
		enc := EncodeFrame(MsgPush, p)
		typ, got, err := ReadFrame(bytes.NewReader(enc), 0)
		if err != nil {
			t.Fatalf("ReadFrame(%d-byte payload): %v", len(p), err)
		}
		if typ != MsgPush || !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: type %v, %d bytes", typ, len(got))
		}
	}
}

func TestFrameStreamOfFrames(t *testing.T) {
	// Several frames back to back on one connection.
	var buf bytes.Buffer
	msgs := []struct {
		t MsgType
		p string
	}{{MsgPush, "alpha"}, {MsgQuery, "beta"}, {MsgAck, ""}, {MsgStats, "gamma"}}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m.t, []byte(m.p)); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range msgs {
		typ, p, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != m.t || string(p) != m.p {
			t.Fatalf("frame %d: got (%v, %q)", i, typ, p)
		}
	}
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestDecodeFrameRest(t *testing.T) {
	b := EncodeFrame(MsgPush, []byte("one"))
	b = AppendFrame(b, MsgQuery, []byte("two"))
	typ, p, rest, err := DecodeFrame(b, 0)
	if err != nil || typ != MsgPush || string(p) != "one" {
		t.Fatalf("first frame: %v %q %v", typ, p, err)
	}
	typ, p, rest, err = DecodeFrame(rest, 0)
	if err != nil || typ != MsgQuery || string(p) != "two" {
		t.Fatalf("second frame: %v %q %v", typ, p, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameRejections(t *testing.T) {
	good := EncodeFrame(MsgPush, []byte("payload"))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrFrame},
		{"bad version", func(b []byte) []byte { b[2] = Version + 1; return b }, ErrVersion},
		{"zero type", func(b []byte) []byte { b[3] = 0; return b }, ErrFrame},
		{"unknown type", func(b []byte) []byte { b[3] = byte(maxMsgType); return b }, ErrFrame},
		{"payload bit flip", func(b []byte) []byte { b[HeaderSize] ^= 0x01; return b }, ErrFrame},
		{"crc bit flip", func(b []byte) []byte { b[8] ^= 0x80; return b }, ErrFrame},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-2] }, ErrFrame},
		{"truncated header", func(b []byte) []byte { return b[:HeaderSize-3] }, ErrFrame},
	}
	for _, c := range cases {
		b := c.mutate(append([]byte(nil), good...))
		if _, _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
		if _, _, _, err := DecodeFrame(b, 0); !errors.Is(err, c.want) {
			t.Errorf("%s (buffer): err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestReadFrameTruncationAlwaysErrFrame is the regression test for
// the truncated-frame error contract: cutting a valid frame at ANY
// byte offset — inside the magic, the CRC trailer of the header, at
// the header/payload boundary, or mid-payload — must yield an error
// that (a) wraps ErrFrame, (b) satisfies errors.Is(err,
// io.ErrUnexpectedEOF) so the truncation stays inspectable, and (c)
// never satisfies errors.Is(err, io.EOF), which is reserved for a
// clean end of stream between frames. The header/payload boundary
// (offset HeaderSize) used to wrap a bare io.EOF, which let a
// truncated frame masquerade as a graceful hangup.
func TestReadFrameTruncationAlwaysErrFrame(t *testing.T) {
	good := EncodeFrame(MsgPush, []byte("payload"))
	for n := 1; n < len(good); n++ {
		_, _, err := ReadFrame(bytes.NewReader(good[:n]), 0)
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
		if !errors.Is(err, ErrFrame) {
			t.Errorf("truncation at %d: err = %v, not ErrFrame-wrapped", n, err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("truncation at %d: err = %v, truncation cause lost", n, err)
		}
		if errors.Is(err, io.EOF) {
			t.Errorf("truncation at %d: err = %v satisfies errors.Is(err, io.EOF); a damaged frame must not look like a clean close", n, err)
		}
		if err == io.ErrUnexpectedEOF {
			t.Errorf("truncation at %d: bare io.ErrUnexpectedEOF escaped unwrapped", n)
		}
	}
	// Offset 0 is the one legitimate io.EOF: the stream ended cleanly
	// before a frame began.
	if _, _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Errorf("empty stream: err = %v, want bare io.EOF", err)
	}
}

func TestFrameOversize(t *testing.T) {
	enc := EncodeFrame(MsgPush, bytes.Repeat([]byte{1}, 100))
	if _, _, err := ReadFrame(bytes.NewReader(enc), 64); !errors.Is(err, ErrOversize) {
		t.Errorf("ReadFrame with 64-byte limit: %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(enc), 100); err != nil {
		t.Errorf("ReadFrame at exact limit: %v", err)
	}
	// The oversize check must fire before any allocation-sized read:
	// a forged header declaring 4 GiB against a short stream.
	forged := append([]byte(nil), enc[:HeaderSize]...)
	forged[4], forged[5], forged[6], forged[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(forged), 1<<20); !errors.Is(err, ErrOversize) {
		t.Errorf("forged huge length: %v", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, a := range []Ack{
		{Code: AckOK},
		{Code: AckSeedMismatch, Detail: "seed 7 != required 42"},
		{Code: AckBadFrame, Detail: "wire: malformed frame: checksum 00000000, header says ffffffff"},
		{Code: AckError, Detail: strings.Repeat("e", maxAckDetail+100)},
	} {
		got, err := DecodeAck(a.Encode())
		if err != nil {
			t.Fatalf("%v: %v", a.Code, err)
		}
		if got.Code != a.Code {
			t.Errorf("code %v != %v", got.Code, a.Code)
		}
		wantDetail := a.Detail
		if len(wantDetail) > maxAckDetail {
			wantDetail = wantDetail[:maxAckDetail]
		}
		if got.Detail != wantDetail {
			t.Errorf("detail %q", got.Detail)
		}
	}
	for _, bad := range [][]byte{nil, {99, 0}, {0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, {0, 5, 'a'}} {
		if _, err := DecodeAck(bad); err == nil {
			t.Errorf("DecodeAck(%v) accepted", bad)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	queries := []Query{
		{Kind: QueryDistinct},
		{Kind: QuerySum, HasSeed: true, Seed: 42},
		{Kind: QueryCountWhere, HasSeed: true, Seed: 7, Pred: PredMod, A: 10, B: 3},
		{Kind: QuerySumWhere, Pred: PredRange, A: 100, B: 5000},
	}
	for _, q := range queries {
		got, err := DecodeQuery(q.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if got != q {
			t.Errorf("round trip: got %+v want %+v", got, q)
		}
	}
}

func TestQueryRejections(t *testing.T) {
	bad := [][]byte{
		nil,
		make([]byte, queryEncodedLen-1),
		make([]byte, queryEncodedLen+1),
	}
	for _, b := range bad {
		if _, err := DecodeQuery(b); err == nil {
			t.Errorf("DecodeQuery(%d bytes) accepted", len(b))
		}
	}
	mut := Query{Kind: QueryDistinct}.Encode()
	mut[0] = byte(numQueryKinds)
	if _, err := DecodeQuery(mut); err == nil {
		t.Error("unknown kind accepted")
	}
	mut = Query{Kind: QueryDistinct}.Encode()
	mut[1] = 0x80
	if _, err := DecodeQuery(mut); err == nil {
		t.Error("unknown flag accepted")
	}
	mut = Query{Kind: QueryDistinct}.Encode()
	mut[10] = byte(numPredKinds)
	if _, err := DecodeQuery(mut); err == nil {
		t.Error("unknown predicate accepted")
	}
}

func TestQueryPredicate(t *testing.T) {
	if f, err := (Query{Kind: QueryDistinct}).Predicate(); err != nil || f != nil {
		t.Errorf("no-predicate query: f non-nil=%v err=%v", f != nil, err)
	}
	if _, err := (Query{Kind: QueryCountWhere}).Predicate(); err == nil {
		t.Error("predicate query without predicate accepted")
	}
	if _, err := (Query{Kind: QueryCountWhere, Pred: PredMod, A: 0}).Predicate(); err == nil {
		t.Error("zero modulus accepted")
	}
	if _, err := (Query{Kind: QueryCountWhere, Pred: PredRange, A: 9, B: 3}).Predicate(); err == nil {
		t.Error("inverted range accepted")
	}
	f, err := (Query{Kind: QueryCountWhere, Pred: PredMod, A: 4, B: 1}).Predicate()
	if err != nil {
		t.Fatal(err)
	}
	if !f(5) || f(4) {
		t.Error("mod predicate wrong")
	}
	f, err = (Query{Kind: QuerySumWhere, Pred: PredRange, A: 10, B: 20}).Predicate()
	if err != nil {
		t.Fatal(err)
	}
	if !f(10) || !f(20) || f(9) || f(21) {
		t.Error("range predicate wrong")
	}
}

func TestQueryResultRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, 1e18, math.NaN(), math.Inf(1)} {
		got, err := DecodeQueryResult(EncodeQueryResult(v))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Errorf("NaN decoded to %v", got)
			}
		} else if got != v {
			t.Errorf("got %v want %v", got, v)
		}
	}
	if _, err := DecodeQueryResult([]byte{1, 2, 3}); err == nil {
		t.Error("short result accepted")
	}
}
