package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode mirrors internal/core's FuzzSamplerUnmarshal for the
// network framing: arbitrary bytes must either be rejected or decode to
// a frame that re-encodes to the identical prefix of the input, with
// DecodeFrame and ReadFrame always agreeing. The seed corpus under
// testdata/fuzz runs on every `go test`; explore further with
//
//	go test -fuzz=FuzzWireDecode ./internal/wire
func FuzzWireDecode(f *testing.F) {
	f.Add(EncodeFrame(MsgPush, []byte("GT\x01sketch bytes")))
	f.Add(EncodeFrame(MsgAck, Ack{Code: AckSeedMismatch, Detail: "seed 7"}.Encode()))
	f.Add(AppendFrame(EncodeFrame(MsgQuery, Query{Kind: QueryDistinct, HasSeed: true, Seed: 42}.Encode()), MsgStats, nil))
	if np, err := EncodePushNamed("clicks", []byte("GT\x01sketch bytes")); err == nil {
		f.Add(EncodeFrame(MsgPushNamed, np))
	}
	if eqe, err := (ExprQuery{Expr: Jaccard(Union(Leaf("a"), Leaf("")), Leaf("b"))}).Encode(); err == nil {
		f.Add(EncodeFrame(MsgQueryExpr, eqe))
		f.Add(EncodeFrame(MsgQueryExpr, eqe[:len(eqe)-2]))
	}
	f.Add([]byte{})
	f.Add([]byte{Magic0, Magic1, Version})
	f.Add(EncodeFrame(MsgStats, nil)[:HeaderSize-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		typ, payload, rest, err := DecodeFrame(data, limit)
		rtyp, rpayload, rerr := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			// The stream reader may fail with a differently-worded
			// error, but it must not succeed where the buffer decoder
			// refused (modulo EOF on an empty input).
			if rerr == nil {
				t.Fatalf("DecodeFrame rejected (%v) but ReadFrame accepted", err)
			}
			return
		}
		if rerr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame rejected: %v", rerr)
		}
		if rtyp != typ || !bytes.Equal(rpayload, payload) {
			t.Fatalf("decoders disagree: (%v, %d bytes) vs (%v, %d bytes)", typ, len(payload), rtyp, len(rpayload))
		}
		// Round trip: re-encoding the decoded frame must reproduce the
		// consumed input bytes exactly.
		re := EncodeFrame(typ, payload)
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode differs from consumed input")
		}
		// Typed payloads must never panic on decode, valid or not.
		switch typ {
		case MsgAck:
			if a, err := DecodeAck(payload); err == nil {
				if _, err := DecodeAck(a.Encode()); err != nil {
					t.Fatalf("ack does not round-trip: %v", err)
				}
			}
		case MsgQuery:
			if q, err := DecodeQuery(payload); err == nil {
				if q.Encode() == nil {
					t.Fatal("query re-encode nil")
				}
				_, _ = q.Predicate()
			}
		case MsgQueryResult:
			_, _ = DecodeQueryResult(payload)
		case MsgPushNamed:
			if stream, env, err := DecodePushNamed(payload); err == nil {
				re, rerr := EncodePushNamed(stream, env)
				if rerr != nil || !bytes.Equal(re, payload) {
					t.Fatalf("named push does not round-trip (err=%v)", rerr)
				}
			}
		case MsgQueryExpr:
			if eq, err := DecodeExprQuery(payload); err == nil {
				// Anything the decoder accepts is structurally valid and
				// must re-encode to the identical bytes.
				if verr := eq.Expr.Validate(); verr != nil {
					t.Fatalf("decoded expression fails Validate: %v", verr)
				}
				re, rerr := eq.Encode()
				if rerr != nil || !bytes.Equal(re, payload) {
					t.Fatalf("expr query does not round-trip (err=%v)", rerr)
				}
				_ = eq.Expr.Leaves(nil)
				_ = eq.Expr.String()
			}
		case MsgQueryExprResult:
			if res, err := DecodeExprResult(payload); err == nil {
				re, rerr := EncodeExprResult(res)
				if rerr != nil || !bytes.Equal(re, payload) {
					t.Fatalf("expr result does not round-trip (err=%v)", rerr)
				}
			}
		}
	})
}
