package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode mirrors internal/core's FuzzSamplerUnmarshal for the
// network framing: arbitrary bytes must either be rejected or decode to
// a frame that re-encodes to the identical prefix of the input, with
// DecodeFrame and ReadFrame always agreeing. The seed corpus under
// testdata/fuzz runs on every `go test`; explore further with
//
//	go test -fuzz=FuzzWireDecode ./internal/wire
func FuzzWireDecode(f *testing.F) {
	f.Add(EncodeFrame(MsgPush, []byte("GT\x01sketch bytes")))
	f.Add(EncodeFrame(MsgAck, Ack{Code: AckSeedMismatch, Detail: "seed 7"}.Encode()))
	f.Add(AppendFrame(EncodeFrame(MsgQuery, Query{Kind: QueryDistinct, HasSeed: true, Seed: 42}.Encode()), MsgStats, nil))
	f.Add([]byte{})
	f.Add([]byte{Magic0, Magic1, Version})
	f.Add(EncodeFrame(MsgStats, nil)[:HeaderSize-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		typ, payload, rest, err := DecodeFrame(data, limit)
		rtyp, rpayload, rerr := ReadFrame(bytes.NewReader(data), limit)
		if err != nil {
			// The stream reader may fail with a differently-worded
			// error, but it must not succeed where the buffer decoder
			// refused (modulo EOF on an empty input).
			if rerr == nil {
				t.Fatalf("DecodeFrame rejected (%v) but ReadFrame accepted", err)
			}
			return
		}
		if rerr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame rejected: %v", rerr)
		}
		if rtyp != typ || !bytes.Equal(rpayload, payload) {
			t.Fatalf("decoders disagree: (%v, %d bytes) vs (%v, %d bytes)", typ, len(payload), rtyp, len(rpayload))
		}
		// Round trip: re-encoding the decoded frame must reproduce the
		// consumed input bytes exactly.
		re := EncodeFrame(typ, payload)
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatalf("re-encode differs from consumed input")
		}
		// Typed payloads must never panic on decode, valid or not.
		switch typ {
		case MsgAck:
			if a, err := DecodeAck(payload); err == nil {
				if _, err := DecodeAck(a.Encode()); err != nil {
					t.Fatalf("ack does not round-trip: %v", err)
				}
			}
		case MsgQuery:
			if q, err := DecodeQuery(payload); err == nil {
				if q.Encode() == nil {
					t.Fatal("query re-encode nil")
				}
				_, _ = q.Predicate()
			}
		case MsgQueryResult:
			_, _ = DecodeQueryResult(payload)
		}
	})
}
