//go:build ignore

// gen_corpus regenerates the FuzzWireDecode seed corpus under
// testdata/fuzz/FuzzWireDecode. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/wire"
)

func main() {
	seeds := map[string][]byte{
		"push-sketch": wire.EncodeFrame(wire.MsgPush, []byte("GT\x01\x00\x00\x2a\x00\x00\x00\x00\x00\x00\x00\x10\x00\x00")),
		"ack-seed-mismatch": wire.EncodeFrame(wire.MsgAck,
			wire.Ack{Code: wire.AckSeedMismatch, Detail: "sketch seed 7, coordinator requires 42"}.Encode()),
		"query-distinct": wire.EncodeFrame(wire.MsgQuery,
			wire.Query{Kind: wire.QueryDistinct, HasSeed: true, Seed: 42}.Encode()),
		"query-predicate": wire.EncodeFrame(wire.MsgQuery,
			wire.Query{Kind: wire.QueryCountWhere, HasSeed: true, Seed: 42, Pred: wire.PredMod, A: 10, B: 3}.Encode()),
		"two-frames": wire.AppendFrame(wire.EncodeFrame(wire.MsgStats, nil),
			wire.MsgQueryResult, wire.EncodeQueryResult(12345.5)),
		"truncated-header": wire.EncodeFrame(wire.MsgStats, []byte("stats"))[:wire.HeaderSize-2],
		"bad-version":      {wire.Magic0, wire.Magic1, 99, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", filepath.Join(dir, name))
	}
}
