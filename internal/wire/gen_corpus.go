//go:build ignore

// gen_corpus regenerates the FuzzWireDecode seed corpus under
// testdata/fuzz/FuzzWireDecode. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/wire"
)

func main() {
	namedPush, err := wire.EncodePushNamed("clicks", []byte("GT\x01\x00\x00\x2a\x00\x00\x00\x00\x00\x00\x00\x10\x00\x00"))
	if err != nil {
		panic(err)
	}
	nested := wire.ExprQuery{HasSeed: true, Seed: 42,
		Expr: wire.Diff(wire.Intersect(wire.Union(wire.Leaf("ads"), wire.Leaf("buys")), wire.Leaf("clicks")), wire.Leaf(""))}
	nestedEnc, err := nested.Encode()
	if err != nil {
		panic(err)
	}
	// A left spine exactly MaxExprDepth deep — the deepest tree the
	// codec accepts; one more level and decode must refuse.
	deep := wire.Leaf("d")
	for i := 1; i < wire.MaxExprDepth; i++ {
		deep = wire.Union(deep, wire.Leaf("d"))
	}
	deepEnc, err := wire.ExprQuery{Expr: deep}.Encode()
	if err != nil {
		panic(err)
	}
	resultEnc, err := wire.EncodeExprResult(&wire.ExprResult{
		Op: wire.OpJaccard, Value: 0.25, ErrBound: 0.06,
		Left:  &wire.ExprResult{Op: wire.OpLeaf, Stream: "ads", Value: 100, ErrBound: 0.03},
		Right: &wire.ExprResult{Op: wire.OpLeaf, Stream: "", Value: 300, ErrBound: 0.03},
	})
	if err != nil {
		panic(err)
	}

	seeds := map[string][]byte{
		"push-sketch":          wire.EncodeFrame(wire.MsgPush, []byte("GT\x01\x00\x00\x2a\x00\x00\x00\x00\x00\x00\x00\x10\x00\x00")),
		"push-named":           wire.EncodeFrame(wire.MsgPushNamed, namedPush),
		"query-expr-nested":    wire.EncodeFrame(wire.MsgQueryExpr, nestedEnc),
		"query-expr-max-depth": wire.EncodeFrame(wire.MsgQueryExpr, deepEnc),
		// A structurally valid frame whose expression payload is cut
		// short: the frame decodes, the typed payload must refuse.
		"query-expr-truncated": wire.EncodeFrame(wire.MsgQueryExpr, nestedEnc[:len(nestedEnc)-3]),
		"query-expr-result":    wire.EncodeFrame(wire.MsgQueryExprResult, resultEnc),
		"ack-seed-mismatch": wire.EncodeFrame(wire.MsgAck,
			wire.Ack{Code: wire.AckSeedMismatch, Detail: "sketch seed 7, coordinator requires 42"}.Encode()),
		"query-distinct": wire.EncodeFrame(wire.MsgQuery,
			wire.Query{Kind: wire.QueryDistinct, HasSeed: true, Seed: 42}.Encode()),
		"query-predicate": wire.EncodeFrame(wire.MsgQuery,
			wire.Query{Kind: wire.QueryCountWhere, HasSeed: true, Seed: 42, Pred: wire.PredMod, A: 10, B: 3}.Encode()),
		"two-frames": wire.AppendFrame(wire.EncodeFrame(wire.MsgStats, nil),
			wire.MsgQueryResult, wire.EncodeQueryResult(12345.5)),
		"truncated-header": wire.EncodeFrame(wire.MsgStats, []byte("stats"))[:wire.HeaderSize-2],
		"bad-version":      {wire.Magic0, wire.Magic1, 99, 1, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", filepath.Join(dir, name))
	}
}
