package kmv

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrCorrupt is returned when decoding a malformed sketch.
var ErrCorrupt = fmt.Errorf("kmv: corrupt sketch encoding: %w", sketch.ErrCorrupt)

// Wire format: magic "KV1", 8-byte seed, uvarint k, uvarint retained
// count, then the retained hash values sorted ascending, delta-encoded
// as uvarints. (Sorting makes the encoding canonical: equal sketch
// states encode identically.)

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := []byte{'K', 'V', '1'}
	b = binary.LittleEndian.AppendUint64(b, s.seed)
	b = binary.AppendUvarint(b, uint64(s.k))
	b = binary.AppendUvarint(b, uint64(len(s.heap)))
	vals := append([]uint64(nil), s.heap...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	prev := uint64(0)
	for i, v := range vals {
		if i == 0 {
			b = binary.AppendUvarint(b, v)
		} else {
			b = binary.AppendUvarint(b, v-prev)
		}
		prev = v
	}
	return b, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing
// s's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || data[0] != 'K' || data[1] != 'V' || data[2] != '1' {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data[3:11])
	rest := data[11:]
	k, n := binary.Uvarint(rest)
	if n <= 0 || k < 2 || k > 1<<30 {
		return fmt.Errorf("%w: bad k", ErrCorrupt)
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > k {
		return fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	rest = rest[n:]
	// Allocate by the actual retained count, not by k: a forged
	// header with a huge k must not trigger a huge allocation.
	tmp := &Sketch{
		k:       int(k),
		seed:    seed,
		hash:    hashing.NewPairwise(seed),
		heap:    make([]uint64, 0, count),
		members: make(map[uint64]struct{}, count),
	}
	var v uint64
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("%w: truncated value %d", ErrCorrupt, i)
		}
		rest = rest[n:]
		if i == 0 {
			v = delta
		} else {
			if delta == 0 {
				return fmt.Errorf("%w: duplicate value", ErrCorrupt)
			}
			v += delta
		}
		tmp.insert(v)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	if len(tmp.heap) != int(count) {
		return fmt.Errorf("%w: duplicate values in encoding", ErrCorrupt)
	}
	*s = *tmp
	return nil
}
