package kmv

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func TestExactBelowK(t *testing.T) {
	s := New(100, 1)
	for x := uint64(0); x < 50; x++ {
		s.Process(x)
		s.Process(x)
	}
	if got := s.Estimate(); got != 50 {
		t.Errorf("estimate below k = %v, want exactly 50", got)
	}
}

func TestAccuracy(t *testing.T) {
	const truth = 100000
	s := New(1024, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	got := s.Estimate()
	if rel := math.Abs(got-truth) / truth; rel > 0.10 {
		t.Errorf("estimate %.0f vs %d: rel err %.3f", got, truth, rel)
	}
}

func TestHeapInvariant(t *testing.T) {
	s := New(64, 7)
	r := hashing.NewXoshiro256(2)
	for i := 0; i < 10000; i++ {
		s.Process(r.Uint64())
		// Root must be the maximum of the heap at every step.
		for j := 1; j < len(s.heap); j++ {
			if s.heap[j] > s.heap[0] {
				t.Fatalf("heap root %d < element %d at %d", s.heap[0], s.heap[j], j)
			}
		}
	}
	if len(s.heap) != 64 {
		t.Errorf("heap size %d, want 64", len(s.heap))
	}
	if len(s.members) != len(s.heap) {
		t.Errorf("members %d != heap %d", len(s.members), len(s.heap))
	}
}

func TestKeepsSmallestK(t *testing.T) {
	// Compare against a brute-force bottom-k of the hash values.
	s := New(32, 5)
	h := hashing.NewPairwise(5)
	var all []uint64
	seen := map[uint64]bool{}
	for x := uint64(0); x < 5000; x++ {
		s.Process(x)
		v := h.Hash(x)
		if !seen[v] {
			seen[v] = true
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	want := map[uint64]bool{}
	for _, v := range all[:32] {
		want[v] = true
	}
	for _, v := range s.heap {
		if !want[v] {
			t.Fatalf("sketch retained %d which is not in the true bottom-32", v)
		}
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, both := New(256, 3), New(256, 3), New(256, 3)
	for x := uint64(0); x < 20000; x++ {
		a.Process(x)
		both.Process(x)
	}
	for x := uint64(15000); x < 40000; x++ {
		b.Process(x)
		both.Process(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged %.0f != union %.0f", a.Estimate(), both.Estimate())
	}
}

func TestMergeCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		r := hashing.NewXoshiro256(seed)
		k := 2 + r.Intn(64)
		hseed := r.Uint64()
		a, b := New(k, hseed), New(k, hseed)
		for i := 0; i < 2000; i++ {
			a.Process(r.Uint64n(5000))
			b.Process(r.Uint64n(5000))
		}
		ab := New(k, hseed)
		_ = ab.Merge(a)
		_ = ab.Merge(b)
		ba := New(k, hseed)
		_ = ba.Merge(b)
		_ = ba.Merge(a)
		return ab.Estimate() == ba.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(16, 1)
	if err := a.Merge(New(8, 1)); err == nil {
		t.Error("k mismatch accepted")
	}
	if err := a.Merge(New(16, 2)); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestJaccard(t *testing.T) {
	// Two streams sharing half their labels: J = |∩|/|∪| = 1/3.
	a, b := New(512, 9), New(512, 9)
	for x := uint64(0); x < 20000; x++ {
		a.Process(x)
	}
	for x := uint64(10000); x < 30000; x++ {
		b.Process(x)
	}
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-1.0/3) > 0.08 {
		t.Errorf("Jaccard = %.3f, want ~0.333", j)
	}
	// Disjoint streams.
	c := New(512, 9)
	for x := uint64(50000); x < 60000; x++ {
		c.Process(x)
	}
	j, err = a.Jaccard(c)
	if err != nil {
		t.Fatal(err)
	}
	if j > 0.02 {
		t.Errorf("disjoint Jaccard = %.3f, want ~0", j)
	}
	// Identical streams.
	d := New(512, 9)
	for x := uint64(0); x < 20000; x++ {
		d.Process(x)
	}
	j, err = a.Jaccard(d)
	if err != nil {
		t.Fatal(err)
	}
	if j < 0.98 {
		t.Errorf("identical Jaccard = %.3f, want ~1", j)
	}
}

func TestJaccardMismatch(t *testing.T) {
	a := New(16, 1)
	if _, err := a.Jaccard(New(16, 2)); err == nil {
		t.Error("seed mismatch accepted")
	}
	if _, err := a.Jaccard(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestJaccardEmpty(t *testing.T) {
	a, b := New(16, 1), New(16, 1)
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Errorf("empty Jaccard = %v, want 0", j)
	}
}

func TestResetAndAccessors(t *testing.T) {
	s := New(16, 1)
	for x := uint64(0); x < 1000; x++ {
		s.Process(x)
	}
	if s.Len() != 16 || s.K() != 16 || s.SizeBytes() != 128 {
		t.Errorf("Len=%d K=%d Size=%d", s.Len(), s.K(), s.SizeBytes())
	}
	s.Reset()
	if s.Len() != 0 || s.Estimate() != 0 {
		t.Error("Reset incomplete")
	}
	s.Process(5)
	if s.Len() != 1 {
		t.Error("unusable after Reset")
	}
}

func TestKForEpsilon(t *testing.T) {
	if k := KForEpsilon(0.1); k < 100 || k > 105 {
		t.Errorf("KForEpsilon(0.1) = %d, want ~102", k)
	}
	for _, bad := range []float64{0, -0.1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KForEpsilon(%v) did not panic", bad)
				}
			}()
			KForEpsilon(bad)
		}()
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1, ...) did not panic")
		}
	}()
	New(1, 0)
}
