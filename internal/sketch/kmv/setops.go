package kmv

import (
	"fmt"
	"math"

	"repro/internal/sketch"
)

// Set-expression estimators over coordinated bottom-k sketches. Two
// KMV sketches sharing a seed are coordinated the same way the
// paper's samplers are: the bottom-k' of their union is a uniform
// k'-minimum sample of A ∪ B under the shared hash, and membership of
// each sampled value in A's and B's retained sets is known exactly
// (a value small enough for the union's bottom-k' is small enough for
// either side's bottom-k). Scaling the observed overlap fractions by
// the union estimate gives the standard KMV set-operation estimators
// (Beyer et al.; the DataSketches theta-sketch lineage).
//
// Unlike the GT sampler, a bottom-k sketch of A ∩ B is *not*
// derivable from the two operand sketches — the k smallest hashes of
// the intersection need not appear in either bottom-k — so this kind
// implements sketch.SetAlgebra (scalars) but not sketch.SetCombiner:
// set operators over KMV groups are answerable only at an expression
// root, and the coordinator gates nesting accordingly.

// setSibling asserts other is a merge-compatible *Sketch.
func (s *Sketch) setSibling(other sketch.Sketch) (*Sketch, error) {
	o, ok := other.(*Sketch)
	if !ok {
		return nil, fmt.Errorf("%w: set algebra between *kmv.Sketch and %T", ErrMismatch, other)
	}
	if o == nil || s.k != o.k || s.seed != o.seed {
		return nil, ErrMismatch
	}
	return o, nil
}

// overlap merges the two sketches into a scratch union and counts,
// over the union's retained bottom-k', the values present in both
// operands and those present only in s.
func (s *Sketch) overlap(o *Sketch) (inBoth, inFirstOnly, kPrime int, unionEst float64, err error) {
	union := New(s.k, s.seed)
	if err := union.Merge(s); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := union.Merge(o); err != nil {
		return 0, 0, 0, 0, err
	}
	for _, v := range union.heap {
		_, inS := s.members[v]
		_, inO := o.members[v]
		switch {
		case inS && inO:
			inBoth++
		case inS:
			inFirstOnly++
		}
	}
	return inBoth, inFirstOnly, len(union.heap), union.Estimate(), nil
}

// SetIntersect implements sketch.SetAlgebra:
// |A ∩ B| ≈ (overlap / k') · |A ∪ B|.
func (s *Sketch) SetIntersect(other sketch.Sketch) (float64, error) {
	o, err := s.setSibling(other)
	if err != nil {
		return 0, err
	}
	inBoth, _, kPrime, unionEst, err := s.overlap(o)
	if err != nil || kPrime == 0 {
		return 0, err
	}
	return float64(inBoth) / float64(kPrime) * unionEst, nil
}

// SetDiff implements sketch.SetAlgebra:
// |A \ B| ≈ (A-only fraction) · |A ∪ B|.
func (s *Sketch) SetDiff(other sketch.Sketch) (float64, error) {
	o, err := s.setSibling(other)
	if err != nil {
		return 0, err
	}
	_, inFirstOnly, kPrime, unionEst, err := s.overlap(o)
	if err != nil || kPrime == 0 {
		return 0, err
	}
	return float64(inFirstOnly) / float64(kPrime) * unionEst, nil
}

// SetJaccard implements sketch.SetAlgebra; it is the existing
// bottom-k overlap ratio (Jaccard) behind the capability interface.
func (s *Sketch) SetJaccard(other sketch.Sketch) (float64, error) {
	o, err := s.setSibling(other)
	if err != nil {
		return 0, err
	}
	return s.Jaccard(o)
}

// RelativeStdErr implements sketch.Accuracy: stderr ≈ 1/√(k-2).
func (s *Sketch) RelativeStdErr() float64 {
	if s.k <= 2 {
		return 1
	}
	return 1 / math.Sqrt(float64(s.k-2))
}
