package kmv

import "repro/internal/sketch"

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindKMV,
		Name:    "kmv",
		Version: 1,
		New: func(eps float64, seed uint64) sketch.Sketch {
			return New(KForEpsilon(eps), seed)
		},
		Decode: func(payload []byte) (sketch.Sketch, error) {
			var s Sketch
			if err := s.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &s, nil
		},
	})
}

// Kind implements sketch.Sketch.
func (s *Sketch) Kind() sketch.Kind { return sketch.KindKMV }

// Seed implements sketch.Sketch.
func (s *Sketch) Seed() uint64 { return s.seed }

// Digest implements sketch.Sketch.
func (s *Sketch) Digest() uint64 {
	return sketch.ConfigDigest(sketch.KindKMV, uint64(s.k), s.seed)
}
