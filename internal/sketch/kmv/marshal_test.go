package kmv

import (
	"errors"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := New(64, 9)
	for x := uint64(0); x < 5000; x++ {
		s.Process(x)
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() {
		t.Error("estimate changed across round trip")
	}
	if got.Len() != s.Len() {
		t.Errorf("Len %d vs %d", got.Len(), s.Len())
	}
	if err := got.Merge(s); err != nil {
		t.Errorf("decoded sketch cannot merge with original: %v", err)
	}
	// Canonical: re-encoding gives identical bytes.
	enc2, _ := got.MarshalBinary()
	if string(enc) != string(enc2) {
		t.Error("encoding not canonical")
	}
}

func TestMarshalPartial(t *testing.T) {
	s := New(100, 2)
	for x := uint64(0); x < 10; x++ {
		s.Process(x)
	}
	enc, _ := s.MarshalBinary()
	var got Sketch
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != 10 {
		t.Errorf("partial estimate = %v, want 10", got.Estimate())
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := New(8, 1)
	for x := uint64(0); x < 100; x++ {
		s.Process(x)
	}
	enc, _ := s.MarshalBinary()
	var d Sketch
	for name, data := range map[string][]byte{
		"empty":     nil,
		"magic":     append([]byte("XXX"), enc[3:]...),
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte{}, enc...), 0, 0),
	} {
		if err := d.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
