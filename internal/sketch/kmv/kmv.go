// Package kmv implements the K-Minimum-Values (bottom-k) distinct
// count sketch — the modern descendant of the paper's coordinated
// sampling idea (the lineage runs GT'01 → Bar-Yossef et al. '02 →
// KMV/theta sketches as in Apache DataSketches).
//
// The sketch keeps the k smallest distinct hash values of the stream;
// with the k-th smallest value mapped to the unit interval as v, the
// estimate is (k-1)/v. Like the GT sampler, KMV sketches sharing a
// seed are coordinated: they merge by keeping the k smallest of the
// union, and the overlap of two sketches' bottom-k sets estimates the
// Jaccard similarity of the underlying streams.
package kmv

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrMismatch is returned when merging sketches with different
// configurations.
var ErrMismatch = fmt.Errorf("kmv: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)

// Sketch is a bottom-k distinct-count sketch. Construct with New.
type Sketch struct {
	k    int
	seed uint64
	hash hashing.Pairwise
	// heap is a max-heap of the current bottom-k hash values, so the
	// largest retained value (the eviction candidate) is at the root.
	heap []uint64
	// members dedups hash values currently in the heap.
	members map[uint64]struct{}
}

// New returns a bottom-k sketch. Relative standard error ≈ 1/√(k-2).
// k must be ≥ 2.
func New(k int, seed uint64) *Sketch {
	if k < 2 {
		panic(fmt.Sprintf("kmv: k must be >= 2, got %d", k))
	}
	return &Sketch{
		k:       k,
		seed:    seed,
		hash:    hashing.NewPairwise(seed),
		heap:    make([]uint64, 0, k),
		members: make(map[uint64]struct{}, k),
	}
}

// Process observes one occurrence of label.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	s.insert(s.hash.Hash(label))
}

// insert folds one hash value into the k smallest.
//
// hotpath: called once per stream item (from Process).
func (s *Sketch) insert(v uint64) {
	if len(s.heap) == s.k && v >= s.heap[0] {
		return // not smaller than the current k-th value
	}
	if _, dup := s.members[v]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.members[v] = struct{}{}
		// allocflow:amortized heap grows to k once, then replaces in place
		s.heap = append(s.heap, v)
		s.siftUp(len(s.heap) - 1)
		return
	}
	// Replace the root (largest retained) with v.
	delete(s.members, s.heap[0])
	s.members[v] = struct{}{}
	s.heap[0] = v
	s.siftDown(0)
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] >= s.heap[i] {
			return
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l] > s.heap[largest] {
			largest = l
		}
		if r < n && s.heap[r] > s.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

// Estimate returns the distinct-count estimate: exact while fewer than
// k distinct hash values have been seen, (k-1)/v_k afterwards.
func (s *Sketch) Estimate() float64 {
	if len(s.heap) < s.k {
		return float64(len(s.heap))
	}
	vk := hashing.Fraction(s.heap[0])
	if vk == 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / vk
}

// Merge folds other into s, keeping the bottom-k of the union. Both
// sketches must share k and seed.
func (s *Sketch) Merge(o sketch.Sketch) error {
	other, ok := o.(*Sketch)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *kmv.Sketch", ErrMismatch, o)
	}
	if other == nil || s.k != other.k || s.seed != other.seed {
		return ErrMismatch
	}
	for _, v := range other.heap {
		s.insert(v)
	}
	return nil
}

// Jaccard estimates the Jaccard similarity |A∩B| / |A∪B| of the two
// sketched streams by the overlap within the bottom-k of the union.
// Both sketches must share k and seed.
func (s *Sketch) Jaccard(other *Sketch) (float64, error) {
	if other == nil || s.k != other.k || s.seed != other.seed {
		return 0, ErrMismatch
	}
	union := New(s.k, s.seed)
	if err := union.Merge(s); err != nil {
		return 0, err
	}
	if err := union.Merge(other); err != nil {
		return 0, err
	}
	inBoth := 0
	for _, v := range union.heap {
		_, inS := s.members[v]
		_, inO := other.members[v]
		if inS && inO {
			inBoth++
		}
	}
	if len(union.heap) == 0 {
		return 0, nil
	}
	return float64(inBoth) / float64(len(union.heap)), nil
}

// Len returns the number of retained hash values.
func (s *Sketch) Len() int { return len(s.heap) }

// K returns the configured k.
func (s *Sketch) K() int { return s.k }

// SizeBytes returns the sketch payload size: 8 bytes per retained
// value.
func (s *Sketch) SizeBytes() int { return 8 * len(s.heap) }

// Reset clears the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	s.heap = s.heap[:0]
	clear(s.members)
}

// KForEpsilon returns the k targeting relative error eps
// (stderr ≈ 1/√(k-2)).
func KForEpsilon(eps float64) int {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("kmv: epsilon must be in (0, 1], got %v", eps))
	}
	k := int(1/(eps*eps)+0.5) + 2
	if k < 2 {
		k = 2
	}
	return k
}
