package bjkst

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrCorrupt is returned when decoding a malformed sketch.
var ErrCorrupt = fmt.Errorf("bjkst: corrupt sketch encoding: %w", sketch.ErrCorrupt)

// Wire format: magic "BJ1", 8-byte seed, uvarint capacity, uvarint
// level z, uvarint bucket count, then (fingerprint uint32 LE, level
// byte) pairs sorted by fingerprint.

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := []byte{'B', 'J', '1'}
	b = binary.LittleEndian.AppendUint64(b, s.seed)
	b = binary.AppendUvarint(b, uint64(s.capacity))
	b = binary.AppendUvarint(b, uint64(s.z))
	b = binary.AppendUvarint(b, uint64(len(s.buckets)))
	fps := make([]uint32, 0, len(s.buckets))
	for fp := range s.buckets {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		b = binary.LittleEndian.AppendUint32(b, fp)
		b = append(b, byte(s.buckets[fp]))
	}
	return b, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing
// s's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || data[0] != 'B' || data[1] != 'J' || data[2] != '1' {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data[3:11])
	rest := data[11:]
	capacity, n := binary.Uvarint(rest)
	if n <= 0 || capacity == 0 || capacity > 1<<30 {
		return fmt.Errorf("%w: bad capacity", ErrCorrupt)
	}
	rest = rest[n:]
	z, n := binary.Uvarint(rest)
	if n <= 0 || z > 64 {
		return fmt.Errorf("%w: bad level", ErrCorrupt)
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > capacity {
		return fmt.Errorf("%w: bad bucket count", ErrCorrupt)
	}
	rest = rest[n:]
	if uint64(len(rest)) != 5*count {
		return fmt.Errorf("%w: payload %d bytes, want %d", ErrCorrupt, len(rest), 5*count)
	}
	// Build by hand with the bucket map sized by the actual count: a
	// forged header with a huge capacity must not trigger a huge
	// allocation. All capacity-derived parameters (the fingerprint
	// range in particular) must still come from the declared capacity
	// so the decoded sketch stays coherent with its encoder.
	sm := hashing.NewSplitMix64(seed)
	tmp := &Sketch{
		capacity:  int(capacity),
		seed:      seed,
		levelHash: hashing.NewPairwise(sm.Next()),
		printHash: hashing.NewPairwise(sm.Next()),
		printMod:  fingerprintMod(int(capacity)),
		buckets:   make(map[uint32]int8, count),
	}
	tmp.z = int(z)
	for i := uint64(0); i < count; i++ {
		fp := binary.LittleEndian.Uint32(rest[5*i:])
		lvl := rest[5*i+4]
		if lvl > 64 || int(lvl) < tmp.z {
			return fmt.Errorf("%w: bucket level %d inconsistent with z=%d", ErrCorrupt, lvl, tmp.z)
		}
		if _, dup := tmp.buckets[fp]; dup {
			return fmt.Errorf("%w: duplicate fingerprint", ErrCorrupt)
		}
		tmp.buckets[fp] = int8(lvl)
	}
	*s = *tmp
	return nil
}
