package bjkst

import (
	"errors"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := New(64, 9)
	for x := uint64(0); x < 20000; x++ {
		s.Process(x)
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() || got.Level() != s.Level() || got.Len() != s.Len() {
		t.Error("state changed across round trip")
	}
	if err := got.Merge(s); err != nil {
		t.Errorf("decoded sketch cannot merge with original: %v", err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := New(8, 1)
	for x := uint64(0); x < 1000; x++ {
		s.Process(x)
	}
	enc, _ := s.MarshalBinary()
	var d Sketch
	for name, data := range map[string][]byte{
		"empty":     nil,
		"magic":     append([]byte("XXX"), enc[3:]...),
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte{}, enc...), 0, 0, 0, 0, 0),
	} {
		if err := d.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
