package bjkst

import (
	"fmt"

	"repro/internal/sketch"
)

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindBJKST,
		Name:    "bjkst",
		Version: 1,
		// BJKST's space bound is Θ(1/ε²) buckets, same shape as the
		// paper's sampler capacity.
		New: func(eps float64, seed uint64) sketch.Sketch {
			if eps <= 0 || eps > 1 {
				panic(fmt.Sprintf("bjkst: epsilon must be in (0, 1], got %v", eps))
			}
			c := int(1/(eps*eps) + 0.5)
			if c < 1 {
				c = 1
			}
			return New(c, seed)
		},
		Decode: func(payload []byte) (sketch.Sketch, error) {
			var s Sketch
			if err := s.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &s, nil
		},
	})
}

// Kind implements sketch.Sketch.
func (s *Sketch) Kind() sketch.Kind { return sketch.KindBJKST }

// Seed implements sketch.Sketch.
func (s *Sketch) Seed() uint64 { return s.seed }

// Digest implements sketch.Sketch.
func (s *Sketch) Digest() uint64 {
	return sketch.ConfigDigest(sketch.KindBJKST, uint64(s.capacity), s.seed)
}
