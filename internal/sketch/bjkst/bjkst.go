// Package bjkst implements the Bar-Yossef–Jayram–Kumar–Sivakumar–
// Trevisan distinct-elements sketch (RANDOM 2002), the immediate
// successor to the paper's scheme. It is structurally the same
// adaptive level-sampling idea, but it stores a short *fingerprint*
// g(x) of each sampled item instead of the item itself, trading a
// small fingerprint-collision bias for fewer bits per slot. Comparing
// it against the GT sampler (E1/E4) shows exactly that trade.
package bjkst

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrMismatch is returned when merging sketches with different
// configurations.
var ErrMismatch = fmt.Errorf("bjkst: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)

// Sketch is a BJKST distinct-count sketch. Construct with New.
type Sketch struct {
	capacity  int
	seed      uint64
	levelHash hashing.Pairwise
	printHash hashing.Pairwise
	printMod  uint64
	z         int
	// buckets maps fingerprint -> max level seen for that fingerprint.
	// (Levels are per original item; a fingerprint collision keeps the
	// higher level, which is the standard small-bias behaviour.)
	buckets map[uint32]int8
}

// New returns a BJKST sketch with the given bucket capacity
// (c = Θ(1/ε²)). Fingerprints are drawn from a range of ~c³ values so
// collisions stay rare, as in the original analysis. capacity must be
// ≥ 1 and small enough that c³ fits in 32 bits (capacity ≤ 1290 keeps
// fingerprints within uint32; larger capacities clamp the range to
// 2^32, which only reduces the collision bias headroom).
func New(capacity int, seed uint64) *Sketch {
	if capacity < 1 {
		panic(fmt.Sprintf("bjkst: capacity must be >= 1, got %d", capacity))
	}
	sm := hashing.NewSplitMix64(seed)
	return &Sketch{
		capacity:  capacity,
		seed:      seed,
		levelHash: hashing.NewPairwise(sm.Next()),
		printHash: hashing.NewPairwise(sm.Next()),
		printMod:  fingerprintMod(capacity),
		buckets:   make(map[uint32]int8, capacity+1),
	}
}

// fingerprintMod returns the fingerprint range for a capacity: ~c³ to
// keep collisions rare (the original analysis), clamped to [64, 2^32].
// The clamp also guards the c³ overflow for capacities above 2^21.
func fingerprintMod(capacity int) uint64 {
	c := uint64(capacity)
	if c == 0 || c > 1<<21 { // c³ would exceed (or overflow past) 2^63
		return 1 << 32
	}
	mod := c * c * c
	switch {
	case mod > 1<<32:
		return 1 << 32
	case mod < 64:
		return 64
	default:
		return mod
	}
}

// Process observes one occurrence of label.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	lvl := int8(hashing.GeometricLevel(s.levelHash.Hash(label)))
	if int(lvl) < s.z {
		return
	}
	fp := uint32(s.printHash.Hash(label) % s.printMod)
	if old, ok := s.buckets[fp]; !ok || lvl > old {
		s.buckets[fp] = lvl
	}
	for len(s.buckets) > s.capacity && s.z < hashing.MaxLevel {
		s.z++
		for f, l := range s.buckets {
			if int(l) < s.z {
				delete(s.buckets, f)
			}
		}
	}
}

// Estimate returns |buckets| · 2^z.
func (s *Sketch) Estimate() float64 {
	return float64(len(s.buckets)) * float64(uint64(1)<<uint(s.z))
}

// Merge folds other into s. Both sketches must share capacity and
// seed.
func (s *Sketch) Merge(o sketch.Sketch) error {
	other, ok := o.(*Sketch)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *bjkst.Sketch", ErrMismatch, o)
	}
	if other == nil || s.capacity != other.capacity || s.seed != other.seed {
		return ErrMismatch
	}
	if other.z > s.z {
		s.z = other.z
		for f, l := range s.buckets {
			if int(l) < s.z {
				delete(s.buckets, f)
			}
		}
	}
	for f, l := range other.buckets {
		if int(l) < s.z {
			continue
		}
		if old, ok := s.buckets[f]; !ok || l > old {
			s.buckets[f] = l
		}
	}
	for len(s.buckets) > s.capacity && s.z < hashing.MaxLevel {
		s.z++
		for f, l := range s.buckets {
			if int(l) < s.z {
				delete(s.buckets, f)
			}
		}
	}
	return nil
}

// Level returns the current sampling level z.
func (s *Sketch) Level() int { return s.z }

// Len returns the number of retained fingerprints.
func (s *Sketch) Len() int { return len(s.buckets) }

// SizeBytes returns the sketch payload size: 5 bytes per bucket
// (4-byte fingerprint + 1-byte level) — the bit saving over storing
// whole labels that BJKST exists for.
func (s *Sketch) SizeBytes() int { return 5 * len(s.buckets) }

// Reset clears the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	s.z = 0
	clear(s.buckets)
}
