package bjkst

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestExactSmall(t *testing.T) {
	s := New(256, 1)
	for x := uint64(0); x < 100; x++ {
		s.Process(x)
		s.Process(x)
	}
	if s.Level() != 0 {
		t.Fatalf("level = %d, want 0", s.Level())
	}
	// Fingerprint collisions can shave a little; allow tiny slack.
	if got := s.Estimate(); got < 97 || got > 100 {
		t.Errorf("estimate = %v, want ~100", got)
	}
}

func TestAccuracy(t *testing.T) {
	const truth = 100000
	s := New(1024, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	got := s.Estimate()
	if rel := math.Abs(got-truth) / truth; rel > 0.12 {
		t.Errorf("estimate %.0f vs %d: rel err %.3f", got, truth, rel)
	}
}

func TestCapacityRespected(t *testing.T) {
	s := New(64, 3)
	for x := uint64(0); x < 100000; x++ {
		s.Process(x)
	}
	if s.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity 64", s.Len())
	}
	if s.Level() == 0 {
		t.Error("level never raised on a large stream")
	}
}

func TestMergeAgreesWithUnion(t *testing.T) {
	a, b, both := New(128, 5), New(128, 5), New(128, 5)
	for x := uint64(0); x < 20000; x++ {
		a.Process(x)
		both.Process(x)
	}
	for x := uint64(10000); x < 35000; x++ {
		b.Process(x)
		both.Process(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Unlike the GT sampler, BJKST merge is not guaranteed to equal
	// sequential processing bit-for-bit (fingerprint collisions can
	// resolve differently), but the estimates must agree closely.
	am, bm := a.Estimate(), both.Estimate()
	if rel := math.Abs(am-bm) / bm; rel > 0.05 {
		t.Errorf("merged %.0f vs union %.0f: rel %.3f", am, bm, rel)
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(64, 1)
	if err := a.Merge(New(32, 1)); err == nil {
		t.Error("capacity mismatch accepted")
	}
	if err := a.Merge(New(64, 2)); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestDuplicateAndOrderInsensitive(t *testing.T) {
	labels := make([]uint64, 5000)
	r := hashing.NewXoshiro256(9)
	for i := range labels {
		labels[i] = r.Uint64n(2000)
	}
	a := New(64, 7)
	for _, x := range labels {
		a.Process(x)
	}
	for i := len(labels) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		labels[i], labels[j] = labels[j], labels[i]
	}
	b := New(64, 7)
	for _, x := range labels {
		b.Process(x)
		b.Process(x)
	}
	if a.Estimate() != b.Estimate() {
		t.Error("estimate depends on order/duplicates")
	}
}

func TestSizeBytes(t *testing.T) {
	s := New(64, 1)
	for x := uint64(0); x < 1000; x++ {
		s.Process(x)
	}
	if s.SizeBytes() != 5*s.Len() {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), 5*s.Len())
	}
}

func TestReset(t *testing.T) {
	s := New(64, 1)
	for x := uint64(0); x < 10000; x++ {
		s.Process(x)
	}
	s.Reset()
	if s.Len() != 0 || s.Level() != 0 || s.Estimate() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, 1)
}

func TestTinyCapacityFingerprintRange(t *testing.T) {
	// capacity 2 -> mod would be 8; clamped to >= 64.
	s := New(2, 1)
	if s.printMod < 64 {
		t.Errorf("printMod = %d, want >= 64", s.printMod)
	}
	for x := uint64(0); x < 10000; x++ {
		s.Process(x)
	}
	if s.Len() > 2 {
		t.Errorf("capacity 2 exceeded: %d", s.Len())
	}
}

func TestHugeCapacityFingerprintRange(t *testing.T) {
	s := New(4096, 1)
	if s.printMod != 1<<32 {
		t.Errorf("printMod = %d, want 2^32", s.printMod)
	}
}
