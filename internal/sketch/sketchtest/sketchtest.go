// Package sketchtest is the conformance suite every registered sketch
// kind must pass: the union algebra (merge commutativity,
// associativity, idempotence) verified on canonical bytes, envelope
// and encoding round-trips, and refusal of mismatched-configuration
// and cross-kind merges. Kind packages run it from their own tests;
// internal/sketch/conformance_test.go runs it over the whole registry
// so a kind cannot register without being held to the contract.
package sketchtest

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/sketch"
)

// conformEps is the accuracy target conformance sketches are built
// with — loose enough that every kind stays small and fast.
const conformEps = 0.25

// build returns a fresh sketch of the kind holding labels [lo, hi).
func build(tb testing.TB, info sketch.KindInfo, seed, lo, hi uint64) sketch.Sketch {
	tb.Helper()
	sk := info.New(conformEps, seed)
	for x := lo; x < hi; x++ {
		sk.Process(x)
	}
	return sk
}

// canon returns the sketch's canonical encoding.
func canon(tb testing.TB, sk sketch.Sketch) []byte {
	tb.Helper()
	b, err := sk.MarshalBinary()
	if err != nil {
		tb.Fatalf("marshal: %v", err)
	}
	return b
}

// clone decodes an independent copy through the registry — the same
// path a coordinator takes — so merge tests never alias state.
func clone(tb testing.TB, sk sketch.Sketch) sketch.Sketch {
	tb.Helper()
	env, err := sketch.Envelope(sk)
	if err != nil {
		tb.Fatalf("envelope: %v", err)
	}
	out, err := sketch.Open(env)
	if err != nil {
		tb.Fatalf("open: %v", err)
	}
	return out
}

// merged returns canon(clone(a) ⋃ clone(b)).
func merged(tb testing.TB, a, b sketch.Sketch) []byte {
	tb.Helper()
	dst := clone(tb, a)
	if err := dst.Merge(clone(tb, b)); err != nil {
		tb.Fatalf("merge: %v", err)
	}
	return canon(tb, dst)
}

// Conform runs the full contract for one registered kind.
func Conform(t *testing.T, info sketch.KindInfo) {
	a := build(t, info, 1, 0, 1000)
	b := build(t, info, 1, 500, 1500)
	c := build(t, info, 1, 1000, 2000)

	t.Run("identity", func(t *testing.T) {
		if a.Kind() != info.Kind {
			t.Errorf("Kind() = %v, want %v", a.Kind(), info.Kind)
		}
		if a.Digest() != b.Digest() {
			t.Errorf("same-config sketches disagree on digest")
		}
	})

	t.Run("round-trip", func(t *testing.T) {
		enc := canon(t, a)
		dec, err := info.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(canon(t, dec), enc) {
			t.Errorf("decode→marshal is not the identity")
		}
		if dec.Kind() != a.Kind() || dec.Seed() != a.Seed() || dec.Digest() != a.Digest() {
			t.Errorf("round-trip changed identity: kind %v/%v seed %d/%d digest %x/%x",
				dec.Kind(), a.Kind(), dec.Seed(), a.Seed(), dec.Digest(), a.Digest())
		}
	})

	t.Run("envelope-round-trip", func(t *testing.T) {
		env, err := sketch.Envelope(a)
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := sketch.PeekKind(env); !ok || k != info.Kind {
			t.Errorf("PeekKind = (%v, %v), want (%v, true)", k, ok, info.Kind)
		}
		dec, err := sketch.Open(env)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if !bytes.Equal(canon(t, dec), canon(t, a)) {
			t.Errorf("envelope round-trip changed the sketch")
		}
	})

	t.Run("merge-commutative", func(t *testing.T) {
		if !bytes.Equal(merged(t, a, b), merged(t, b, a)) {
			t.Errorf("a⋃b != b⋃a on canonical bytes")
		}
	})

	t.Run("merge-associative", func(t *testing.T) {
		ab := clone(t, a)
		if err := ab.Merge(clone(t, b)); err != nil {
			t.Fatal(err)
		}
		bc := clone(t, b)
		if err := bc.Merge(clone(t, c)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(merged(t, ab, c), merged(t, a, bc)) {
			t.Errorf("(a⋃b)⋃c != a⋃(b⋃c) on canonical bytes")
		}
	})

	t.Run("merge-idempotent", func(t *testing.T) {
		if !bytes.Equal(merged(t, a, a), canon(t, a)) {
			t.Errorf("a⋃a != a on canonical bytes")
		}
	})

	t.Run("merge-refuses-mismatch", func(t *testing.T) {
		other := build(t, info, 2, 0, 100)
		if other.Digest() == a.Digest() {
			// Seedless, parameter-free kinds (exact) have one universal
			// configuration: there is no mismatch to refuse.
			t.Skip("kind has a single configuration")
		}
		err := clone(t, a).Merge(other)
		if !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched merge: err = %v, want sketch.ErrMismatch", err)
		}
	})

	t.Run("merge-refuses-cross-kind", func(t *testing.T) {
		for _, oi := range sketch.Kinds() {
			if oi.Kind == info.Kind {
				continue
			}
			other := build(t, oi, 1, 0, 10)
			if err := clone(t, a).Merge(other); err == nil {
				t.Errorf("merging kind %q into %q succeeded", oi.Name, info.Name)
			}
			break
		}
	})

	t.Run("set-algebra", func(t *testing.T) { conformSetAlgebra(t, info, a, b) })

	t.Run("estimate-sane", func(t *testing.T) {
		// a holds 1000 distinct labels at ε=0.25; any registered kind
		// must land within an order of magnitude (AMS is the loosest,
		// constant-factor only).
		est := clone(t, a).Estimate()
		if math.IsNaN(est) || est <= 0 || est > 1000*16 {
			t.Errorf("estimate %v for 1000 distinct labels", est)
		}
	})
}

// conformSetAlgebra holds set-capable kinds to the pairwise algebra
// contract and non-capable kinds to clean gating. The capability is
// part of the kind's registered identity: it must survive the
// envelope round trip (the coordinator's expression evaluator works
// exclusively on clones) and refuse mismatched or cross-kind operands
// with sketch.ErrMismatch, exactly like Merge.
func conformSetAlgebra(t *testing.T, info sketch.KindInfo, a, b sketch.Sketch) {
	alg, capable := clone(t, a).(sketch.SetAlgebra)
	if _, direct := a.(sketch.SetAlgebra); direct != capable {
		t.Fatalf("SetAlgebra capability lost in envelope round trip (direct %v, clone %v)", direct, capable)
	}
	if !capable {
		// Clean gating: a kind without the algebra must not smuggle in
		// half of it either.
		if _, ok := a.(sketch.SetCombiner); ok {
			t.Errorf("kind %q implements SetCombiner but not SetAlgebra", info.Name)
		}
		return
	}

	estA, estB := clone(t, a).Estimate(), clone(t, b).Estimate()
	union := clone(t, a)
	if err := union.Merge(clone(t, b)); err != nil {
		t.Fatal(err)
	}
	estU := union.Estimate()
	inter, err := alg.SetIntersect(clone(t, b))
	if err != nil {
		t.Fatalf("SetIntersect: %v", err)
	}
	diff, err := alg.SetDiff(clone(t, b))
	if err != nil {
		t.Fatalf("SetDiff: %v", err)
	}
	jac, err := alg.SetJaccard(clone(t, b))
	if err != nil {
		t.Fatalf("SetJaccard: %v", err)
	}

	// Inclusion–exclusion: |A∪B| = |A| + |B| − |A∩B|, every term its
	// own estimate, so the identity holds within the combined error of
	// the conformance ε (generous, but deterministic seeds keep it
	// stable).
	if lhs, rhs := estU, estA+estB-inter; math.Abs(lhs-rhs) > 0.5*math.Max(lhs, rhs) {
		t.Errorf("inclusion–exclusion broken: |A∪B| = %v but |A|+|B|−|A∩B| = %v+%v−%v = %v", lhs, estA, estB, inter, rhs)
	}
	if inter < 0 || diff < 0 {
		t.Errorf("negative set estimate: intersect %v, diff %v", inter, diff)
	}
	if jac < 0 || jac > 1 {
		t.Errorf("Jaccard %v outside [0,1]", jac)
	}
	// Against itself the algebra is exact: identical retained sets.
	if d, err := alg.SetDiff(clone(t, a)); err != nil || d != 0 {
		t.Errorf("SetDiff(A, A) = (%v, %v), want (0, nil)", d, err)
	}
	if j, err := alg.SetJaccard(clone(t, a)); err != nil || j != 1 {
		t.Errorf("SetJaccard(A, A) = (%v, %v), want (1, nil)", j, err)
	}

	// Typed refusals: diverged configuration and cross-kind operands.
	other := build(t, info, 2, 0, 100)
	if other.Digest() != a.Digest() {
		if _, err := alg.SetIntersect(other); !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched SetIntersect: err = %v, want sketch.ErrMismatch", err)
		}
		if _, err := alg.SetDiff(other); !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched SetDiff: err = %v, want sketch.ErrMismatch", err)
		}
		if _, err := alg.SetJaccard(other); !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched SetJaccard: err = %v, want sketch.ErrMismatch", err)
		}
	}
	for _, oi := range sketch.Kinds() {
		if oi.Kind == info.Kind {
			continue
		}
		foreign := build(t, oi, 1, 0, 10)
		if _, err := alg.SetIntersect(foreign); !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("cross-kind SetIntersect (%q into %q): err = %v, want sketch.ErrMismatch", oi.Name, info.Name, err)
		}
		break
	}

	comb, combines := clone(t, a).(sketch.SetCombiner)
	if _, direct := a.(sketch.SetCombiner); direct != combines {
		t.Fatalf("SetCombiner capability lost in envelope round trip (direct %v, clone %v)", direct, combines)
	}
	if !combines {
		return
	}
	// The sketch-valued operations must agree with the scalars exactly
	// (both reduce the same per-copy sample counts) and produce a
	// merge-compatible sketch — the closure property interior
	// expression nodes rely on.
	csk, err := comb.CombineIntersect(clone(t, b))
	if err != nil {
		t.Fatalf("CombineIntersect: %v", err)
	}
	if got := csk.Estimate(); got != inter {
		t.Errorf("CombineIntersect estimate %v != SetIntersect %v", got, inter)
	}
	if csk.Kind() != a.Kind() || csk.Digest() != a.Digest() {
		t.Errorf("combined sketch changed identity: kind %v/%v digest %x/%x", csk.Kind(), a.Kind(), csk.Digest(), a.Digest())
	}
	if err := clone(t, a).Merge(csk); err != nil {
		t.Errorf("combined sketch refuses to merge back: %v", err)
	}
	dsk, err := comb.CombineDiff(clone(t, b))
	if err != nil {
		t.Fatalf("CombineDiff: %v", err)
	}
	if got := dsk.Estimate(); got != diff {
		t.Errorf("CombineDiff estimate %v != SetDiff %v", got, diff)
	}
	if other.Digest() != a.Digest() {
		if _, err := comb.CombineIntersect(other); !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched CombineIntersect: err = %v, want sketch.ErrMismatch", err)
		}
		if _, err := comb.CombineDiff(other); !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched CombineDiff: err = %v, want sketch.ErrMismatch", err)
		}
	}
}
