// Package sketchtest is the conformance suite every registered sketch
// kind must pass: the union algebra (merge commutativity,
// associativity, idempotence) verified on canonical bytes, envelope
// and encoding round-trips, and refusal of mismatched-configuration
// and cross-kind merges. Kind packages run it from their own tests;
// internal/sketch/conformance_test.go runs it over the whole registry
// so a kind cannot register without being held to the contract.
package sketchtest

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/sketch"
)

// conformEps is the accuracy target conformance sketches are built
// with — loose enough that every kind stays small and fast.
const conformEps = 0.25

// build returns a fresh sketch of the kind holding labels [lo, hi).
func build(tb testing.TB, info sketch.KindInfo, seed, lo, hi uint64) sketch.Sketch {
	tb.Helper()
	sk := info.New(conformEps, seed)
	for x := lo; x < hi; x++ {
		sk.Process(x)
	}
	return sk
}

// canon returns the sketch's canonical encoding.
func canon(tb testing.TB, sk sketch.Sketch) []byte {
	tb.Helper()
	b, err := sk.MarshalBinary()
	if err != nil {
		tb.Fatalf("marshal: %v", err)
	}
	return b
}

// clone decodes an independent copy through the registry — the same
// path a coordinator takes — so merge tests never alias state.
func clone(tb testing.TB, sk sketch.Sketch) sketch.Sketch {
	tb.Helper()
	env, err := sketch.Envelope(sk)
	if err != nil {
		tb.Fatalf("envelope: %v", err)
	}
	out, err := sketch.Open(env)
	if err != nil {
		tb.Fatalf("open: %v", err)
	}
	return out
}

// merged returns canon(clone(a) ⋃ clone(b)).
func merged(tb testing.TB, a, b sketch.Sketch) []byte {
	tb.Helper()
	dst := clone(tb, a)
	if err := dst.Merge(clone(tb, b)); err != nil {
		tb.Fatalf("merge: %v", err)
	}
	return canon(tb, dst)
}

// Conform runs the full contract for one registered kind.
func Conform(t *testing.T, info sketch.KindInfo) {
	a := build(t, info, 1, 0, 1000)
	b := build(t, info, 1, 500, 1500)
	c := build(t, info, 1, 1000, 2000)

	t.Run("identity", func(t *testing.T) {
		if a.Kind() != info.Kind {
			t.Errorf("Kind() = %v, want %v", a.Kind(), info.Kind)
		}
		if a.Digest() != b.Digest() {
			t.Errorf("same-config sketches disagree on digest")
		}
	})

	t.Run("round-trip", func(t *testing.T) {
		enc := canon(t, a)
		dec, err := info.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(canon(t, dec), enc) {
			t.Errorf("decode→marshal is not the identity")
		}
		if dec.Kind() != a.Kind() || dec.Seed() != a.Seed() || dec.Digest() != a.Digest() {
			t.Errorf("round-trip changed identity: kind %v/%v seed %d/%d digest %x/%x",
				dec.Kind(), a.Kind(), dec.Seed(), a.Seed(), dec.Digest(), a.Digest())
		}
	})

	t.Run("envelope-round-trip", func(t *testing.T) {
		env, err := sketch.Envelope(a)
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := sketch.PeekKind(env); !ok || k != info.Kind {
			t.Errorf("PeekKind = (%v, %v), want (%v, true)", k, ok, info.Kind)
		}
		dec, err := sketch.Open(env)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if !bytes.Equal(canon(t, dec), canon(t, a)) {
			t.Errorf("envelope round-trip changed the sketch")
		}
	})

	t.Run("merge-commutative", func(t *testing.T) {
		if !bytes.Equal(merged(t, a, b), merged(t, b, a)) {
			t.Errorf("a⋃b != b⋃a on canonical bytes")
		}
	})

	t.Run("merge-associative", func(t *testing.T) {
		ab := clone(t, a)
		if err := ab.Merge(clone(t, b)); err != nil {
			t.Fatal(err)
		}
		bc := clone(t, b)
		if err := bc.Merge(clone(t, c)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(merged(t, ab, c), merged(t, a, bc)) {
			t.Errorf("(a⋃b)⋃c != a⋃(b⋃c) on canonical bytes")
		}
	})

	t.Run("merge-idempotent", func(t *testing.T) {
		if !bytes.Equal(merged(t, a, a), canon(t, a)) {
			t.Errorf("a⋃a != a on canonical bytes")
		}
	})

	t.Run("merge-refuses-mismatch", func(t *testing.T) {
		other := build(t, info, 2, 0, 100)
		if other.Digest() == a.Digest() {
			// Seedless, parameter-free kinds (exact) have one universal
			// configuration: there is no mismatch to refuse.
			t.Skip("kind has a single configuration")
		}
		err := clone(t, a).Merge(other)
		if !errors.Is(err, sketch.ErrMismatch) {
			t.Errorf("mismatched merge: err = %v, want sketch.ErrMismatch", err)
		}
	})

	t.Run("merge-refuses-cross-kind", func(t *testing.T) {
		for _, oi := range sketch.Kinds() {
			if oi.Kind == info.Kind {
				continue
			}
			other := build(t, oi, 1, 0, 10)
			if err := clone(t, a).Merge(other); err == nil {
				t.Errorf("merging kind %q into %q succeeded", oi.Name, info.Name)
			}
			break
		}
	})

	t.Run("estimate-sane", func(t *testing.T) {
		// a holds 1000 distinct labels at ε=0.25; any registered kind
		// must land within an order of magnitude (AMS is the loosest,
		// constant-factor only).
		est := clone(t, a).Estimate()
		if math.IsNaN(est) || est <= 0 || est > 1000*16 {
			t.Errorf("estimate %v for 1000 distinct labels", est)
		}
	})
}
