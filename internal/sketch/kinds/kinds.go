// Package kinds registers every sketch kind the repository ships by
// blank-importing the implementing packages. Import it (blank) from
// any binary or test that must decode arbitrary envelopes — the
// daemon, the CLIs, the conformance suite — without hand-picking
// backends. Packages that already import a specific kind get its
// registration for free from that import.
package kinds

import (
	_ "repro/internal/core"
	_ "repro/internal/exact"
	_ "repro/internal/sketch/ams"
	_ "repro/internal/sketch/bjkst"
	_ "repro/internal/sketch/fm"
	_ "repro/internal/sketch/kmv"
	_ "repro/internal/sketch/ll"
	_ "repro/internal/window"
)
