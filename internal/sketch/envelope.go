package sketch

import (
	"encoding/binary"
	"fmt"
)

// Envelope format: every sketch that leaves its process — a wire
// push, a distsim site message, a checkpoint — is wrapped in a fixed
// self-describing header so the receiver can route it to the right
// decoder and refuse incompatible configurations before touching the
// payload:
//
//	offset  size  field
//	0       2     magic "SK"
//	2       1     kind tag (Kind)
//	3       1     payload format version (KindInfo.Version)
//	4       8     config digest, uint64 little endian (Sketch.Digest)
//	12      n     payload (Sketch.MarshalBinary)
//
// The digest is redundant with the payload's own configuration fields
// — deliberately: Open cross-checks the decoded sketch's Digest
// against the header and refuses on disagreement, so a truncated or
// spliced payload cannot masquerade as a compatible sketch even when
// it parses.
const (
	// EnvelopeMagic0 and EnvelopeMagic1 open every envelope.
	EnvelopeMagic0 = 'S'
	EnvelopeMagic1 = 'K'
	// EnvelopeHeaderSize is the fixed envelope header length in bytes.
	EnvelopeHeaderSize = 12
)

// AppendEnvelope appends s's envelope (header + payload) to b and
// returns the extended slice.
//
// hotpath: called once per site message / server snapshot encode; the
// absorb benchmarks sit on top of it.
func AppendEnvelope(b []byte, s Sketch) ([]byte, error) {
	payload, err := s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	info, ok := Lookup(s.Kind())
	if !ok {
		// allocflow:cold an unregistered kind is a wiring bug caught in tests
		return nil, fmt.Errorf("%w: %d (kind not registered)", ErrUnknownKind, uint8(s.Kind()))
	}
	b = append(b, EnvelopeMagic0, EnvelopeMagic1, byte(info.Kind), info.Version) // allocflow:amortized grows the caller's reusable buffer
	b = binary.LittleEndian.AppendUint64(b, s.Digest())
	return append(b, payload...), nil // allocflow:amortized grows the caller's reusable buffer
}

// Envelope returns a fresh envelope encoding of s.
func Envelope(s Sketch) ([]byte, error) {
	return AppendEnvelope(make([]byte, 0, EnvelopeHeaderSize+64), s)
}

// PeekKind reads the kind tag from an envelope without decoding the
// payload. It reports false when b is not even a plausible envelope.
func PeekKind(b []byte) (Kind, bool) {
	if len(b) < EnvelopeHeaderSize || b[0] != EnvelopeMagic0 || b[1] != EnvelopeMagic1 {
		return 0, false
	}
	return Kind(b[2]), true
}

// PeekHeader reads the kind tag and config digest from an envelope
// without decoding the payload — enough to route the envelope (a
// merge group is identified by exactly this pair) without paying for
// a decode. It reports false when b is not even a plausible envelope.
func PeekHeader(b []byte) (kind Kind, digest uint64, ok bool) {
	if len(b) < EnvelopeHeaderSize || b[0] != EnvelopeMagic0 || b[1] != EnvelopeMagic1 {
		return 0, 0, false
	}
	return Kind(b[2]), binary.LittleEndian.Uint64(b[4:12]), true
}

// Open decodes an envelope into a fresh sketch. It validates the
// magic, routes by kind through the registry, checks the format
// version, decodes the payload, and finally cross-checks the decoded
// sketch's configuration digest against the header. Every failure is
// typed: ErrUnknownKind for an unregistered tag, ErrCorrupt for
// everything structurally wrong.
//
// hotpath: called once per absorbed message / replayed WAL record.
func Open(b []byte) (Sketch, error) {
	if len(b) < EnvelopeHeaderSize {
		// allocflow:cold corrupt envelopes abort the absorb, they are not streamed
		return nil, fmt.Errorf("%w: envelope %d bytes, need %d-byte header", ErrCorrupt, len(b), EnvelopeHeaderSize)
	}
	if b[0] != EnvelopeMagic0 || b[1] != EnvelopeMagic1 {
		// allocflow:cold corrupt envelopes abort the absorb, they are not streamed
		return nil, fmt.Errorf("%w: bad envelope magic %q", ErrCorrupt, b[:2])
	}
	kind := Kind(b[2])
	info, ok := Lookup(kind)
	if !ok {
		// allocflow:cold an unregistered kind is a wiring bug caught in tests
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, b[2])
	}
	if b[3] != info.Version {
		// allocflow:cold version skew aborts the absorb, it is not streamed
		return nil, fmt.Errorf("%w: %s payload version %d, this build speaks %d", ErrCorrupt, info.Name, b[3], info.Version)
	}
	digest := binary.LittleEndian.Uint64(b[4:12])
	s, err := info.Decode(b[EnvelopeHeaderSize:])
	if err != nil {
		return nil, err
	}
	if s.Kind() != kind {
		// allocflow:cold kind mismatch aborts the absorb, it is not streamed
		return nil, fmt.Errorf("%w: %s payload decoded to kind %s", ErrCorrupt, info.Name, s.Kind())
	}
	if got := s.Digest(); got != digest {
		// allocflow:cold digest mismatch aborts the absorb, it is not streamed
		return nil, fmt.Errorf("%w: %s config digest %016x, envelope says %016x", ErrCorrupt, info.Name, got, digest)
	}
	return s, nil
}
