package sketch

import (
	"fmt"
	"sort"
	"sync"
)

// KindInfo describes one registered sketch algorithm: its stable wire
// tag, human-readable name, payload format version, and the two
// factory functions every layer builds on.
type KindInfo struct {
	// Kind is the stable wire tag (see the Kind constants).
	Kind Kind
	// Name is the short stable identifier operators use to select a
	// backend (e.g. "gt", "kmv"). Lowercase, no spaces.
	Name string
	// Version is the payload format version stamped into envelopes; a
	// decoder refuses other versions. Bump it when the MarshalBinary
	// layout changes incompatibly.
	Version uint8
	// New returns an empty sketch targeting relative error eps
	// (0 < eps ≤ 1) with the given coordination seed. Kinds whose
	// accuracy is not eps-parameterized (exact) may ignore eps; kinds
	// without a seed ignore seed. Panics on invalid eps, matching the
	// underlying package constructors.
	New func(eps float64, seed uint64) Sketch
	// Decode parses a canonical payload (the bytes MarshalBinary
	// produced, without the envelope header) into a fresh sketch.
	Decode func(payload []byte) (Sketch, error)
}

// registry holds the process-wide kind table. Registration happens in
// package init functions; lookups happen on every envelope decode.
type registry struct {
	mu     sync.RWMutex // guards: byKind, byName
	byKind map[Kind]KindInfo
	byName map[string]KindInfo
}

var reg = &registry{
	byKind: make(map[Kind]KindInfo),
	byName: make(map[string]KindInfo),
}

// Register adds a kind to the process-wide registry. It is called
// from the implementing package's init function and panics on an
// incomplete KindInfo or a duplicate tag or name — both are build
// mistakes, not runtime conditions.
func Register(info KindInfo) {
	if info.Kind == 0 || info.Name == "" || info.Version == 0 || info.New == nil || info.Decode == nil {
		panic(fmt.Sprintf("sketch: Register(%q): incomplete KindInfo", info.Name))
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if prev, dup := reg.byKind[info.Kind]; dup {
		panic(fmt.Sprintf("sketch: kind %d registered twice (%q and %q)", uint8(info.Kind), prev.Name, info.Name))
	}
	if _, dup := reg.byName[info.Name]; dup {
		panic(fmt.Sprintf("sketch: name %q registered twice", info.Name))
	}
	reg.byKind[info.Kind] = info
	reg.byName[info.Name] = info
}

// Lookup returns the registration for a kind tag.
func Lookup(k Kind) (KindInfo, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	info, ok := reg.byKind[k]
	return info, ok
}

// LookupName returns the registration for a backend name.
func LookupName(name string) (KindInfo, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	info, ok := reg.byName[name]
	return info, ok
}

// Kinds returns every registration ordered by kind tag — the stable
// iteration order the conformance suite, fuzzers, and CLI help use.
func Kinds() []KindInfo {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]KindInfo, 0, len(reg.byKind))
	for _, info := range reg.byKind {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Names returns every registered backend name in kind-tag order.
func Names() []string {
	infos := Kinds()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}
