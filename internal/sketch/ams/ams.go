// Package ams implements the Alon–Matias–Szegedy F0 estimator (STOC
// 1996): track the maximum geometric level R seen under a
// pairwise-independent hash and output 2^(R+1/2).
//
// AMS needs only pairwise independence and O(log m) bits per copy, but
// it is a *constant-factor* estimator: with constant probability the
// output is within a factor of c of the truth, and no amount of
// repetition tightens the factor to 1±ε. This is exactly the gap the
// paper's abstract calls out — its coordinated sampling gets a true
// (ε, δ) guarantee from the same pairwise hashing — and experiment E1
// shows it: AMS's error plateaus near a constant while the GT sampler's
// error shrinks with capacity.
//
// Copies merge by taking the per-copy maximum level, so AMS supports
// distributed unions when seeds are shared.
package ams

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrMismatch is returned when merging sketches with different
// configurations.
var ErrMismatch = fmt.Errorf("ams: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)

// Sketch is a multi-copy AMS F0 estimator. Construct with New.
type Sketch struct {
	seed   uint64
	hashes []hashing.Pairwise
	maxLvl []int8 // -1 = copy has seen nothing
}

// New returns an AMS sketch with the given number of independent
// copies; the estimate is the median across copies. copies must be ≥ 1.
func New(copies int, seed uint64) *Sketch {
	if copies < 1 {
		panic(fmt.Sprintf("ams: copies must be >= 1, got %d", copies))
	}
	sm := hashing.NewSplitMix64(seed)
	s := &Sketch{
		seed:   seed,
		hashes: make([]hashing.Pairwise, copies),
		maxLvl: make([]int8, copies),
	}
	for i := range s.hashes {
		s.hashes[i] = hashing.NewPairwise(sm.Next())
		s.maxLvl[i] = -1
	}
	return s
}

// Process observes one occurrence of label.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	for i, h := range s.hashes {
		lvl := int8(hashing.GeometricLevel(h.Hash(label)))
		if lvl > s.maxLvl[i] {
			s.maxLvl[i] = lvl
		}
	}
}

// Estimate returns the median across copies of 2^(R+1/2), or 0 for an
// empty sketch.
func (s *Sketch) Estimate() float64 {
	ests := make([]float64, len(s.maxLvl))
	for i, r := range s.maxLvl {
		if r < 0 {
			ests[i] = 0
			continue
		}
		ests[i] = math.Exp2(float64(r) + 0.5)
	}
	return median(ests)
}

// Merge folds other into s by per-copy maximum. Both sketches must
// share copy count and seed.
func (s *Sketch) Merge(o sketch.Sketch) error {
	other, ok := o.(*Sketch)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *ams.Sketch", ErrMismatch, o)
	}
	if other == nil || len(s.maxLvl) != len(other.maxLvl) || s.seed != other.seed {
		return ErrMismatch
	}
	for i := range s.maxLvl {
		if other.maxLvl[i] > s.maxLvl[i] {
			s.maxLvl[i] = other.maxLvl[i]
		}
	}
	return nil
}

// SizeBytes returns the sketch payload size: one level byte per copy.
// This is the O(log m) bits/copy the literature charges AMS.
func (s *Sketch) SizeBytes() int { return len(s.maxLvl) }

// Copies returns the number of independent copies.
func (s *Sketch) Copies() int { return len(s.maxLvl) }

// Reset clears the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	for i := range s.maxLvl {
		s.maxLvl[i] = -1
	}
}

func median(vals []float64) float64 {
	// Insertion sort a copy; copy counts are small.
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
