package ams

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sketch"
)

// ErrCorrupt is returned when decoding a malformed sketch.
var ErrCorrupt = fmt.Errorf("ams: corrupt sketch encoding: %w", sketch.ErrCorrupt)

// Wire format: magic "AM1", 8-byte seed, uvarint copies, one level
// byte per copy (0xFF encodes "empty").

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := []byte{'A', 'M', '1'}
	b = binary.LittleEndian.AppendUint64(b, s.seed)
	b = binary.AppendUvarint(b, uint64(len(s.maxLvl)))
	for _, l := range s.maxLvl {
		if l < 0 {
			b = append(b, 0xFF)
		} else {
			b = append(b, byte(l))
		}
	}
	return b, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing
// s's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || data[0] != 'A' || data[1] != 'M' || data[2] != '1' {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data[3:11])
	rest := data[11:]
	copies, n := binary.Uvarint(rest)
	if n <= 0 || copies == 0 || copies > 1<<16 {
		return fmt.Errorf("%w: bad copy count", ErrCorrupt)
	}
	rest = rest[n:]
	if uint64(len(rest)) != copies {
		return fmt.Errorf("%w: payload %d bytes, want %d", ErrCorrupt, len(rest), copies)
	}
	tmp := New(int(copies), seed)
	for i, v := range rest {
		if v == 0xFF {
			tmp.maxLvl[i] = -1
		} else if v > 64 {
			return fmt.Errorf("%w: level %d out of range", ErrCorrupt, v)
		} else {
			tmp.maxLvl[i] = int8(v)
		}
	}
	*s = *tmp
	return nil
}
