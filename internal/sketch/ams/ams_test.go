package ams

import (
	"math"
	"testing"
)

func TestConstantFactor(t *testing.T) {
	// AMS guarantees only a constant factor; check the estimate is
	// within a factor of 8 of the truth with 15 copies (deterministic
	// for fixed seed).
	const truth = 100000
	s := New(15, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	got := s.Estimate()
	if got < truth/8 || got > truth*8 {
		t.Errorf("estimate %.0f outside [%d, %d]", got, truth/8, truth*8)
	}
}

func TestEmpty(t *testing.T) {
	if got := New(5, 1).Estimate(); got != 0 {
		t.Errorf("empty estimate = %v, want 0", got)
	}
}

func TestDuplicateInsensitive(t *testing.T) {
	a, b := New(5, 7), New(5, 7)
	for x := uint64(0); x < 1000; x++ {
		a.Process(x)
		b.Process(x)
		b.Process(x)
		b.Process(x)
	}
	if a.Estimate() != b.Estimate() {
		t.Error("duplicates changed the estimate")
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, both := New(7, 3), New(7, 3), New(7, 3)
	for x := uint64(0); x < 5000; x++ {
		a.Process(x)
		both.Process(x)
	}
	for x := uint64(2000); x < 8000; x++ {
		b.Process(x)
		both.Process(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged %.0f != union %.0f", a.Estimate(), both.Estimate())
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(5, 3)
	if err := a.Merge(New(7, 3)); err == nil {
		t.Error("copies mismatch accepted")
	}
	if err := a.Merge(New(5, 4)); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestReset(t *testing.T) {
	s := New(5, 1)
	for x := uint64(0); x < 1000; x++ {
		s.Process(x)
	}
	s.Reset()
	if got := s.Estimate(); got != 0 {
		t.Errorf("estimate after Reset = %v, want 0", got)
	}
}

func TestSizeAndCopies(t *testing.T) {
	s := New(9, 1)
	if s.SizeBytes() != 9 {
		t.Errorf("SizeBytes = %d, want 9", s.SizeBytes())
	}
	if s.Copies() != 9 {
		t.Errorf("Copies = %d, want 9", s.Copies())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, 1)
}

func TestMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
}

func TestErrorPlateaus(t *testing.T) {
	// The paper's point about AMS: adding copies does not make it an
	// (ε, δ)-estimator. With many copies the estimate is still a
	// power-of-two-ish value, so relative error bottoms out around
	// 2^±0.5. Verify the 63-copy estimate is no better than 15%.
	const truth = 1 << 17 // power of two: estimate is 2^(r+0.5) ≠ truth
	s := New(63, 9)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	rel := math.Abs(s.Estimate()-truth) / truth
	if rel < 0.15 {
		t.Errorf("AMS error %v unexpectedly small; estimator semantics changed?", rel)
	}
}
