package ams

import (
	"errors"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := New(7, 3)
	for x := uint64(0); x < 5000; x++ {
		s.Process(x)
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() {
		t.Error("estimate changed across round trip")
	}
	if err := got.Merge(s); err != nil {
		t.Errorf("decoded sketch cannot merge with original: %v", err)
	}
}

func TestMarshalEmptyCopies(t *testing.T) {
	s := New(3, 1) // never processed: all copies empty (level -1)
	enc, _ := s.MarshalBinary()
	var got Sketch
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != 0 {
		t.Errorf("empty estimate = %v", got.Estimate())
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := New(3, 1)
	s.Process(5)
	enc, _ := s.MarshalBinary()
	var d Sketch
	for name, data := range map[string][]byte{
		"empty":     nil,
		"magic":     append([]byte("XXX"), enc[3:]...),
		"truncated": enc[:len(enc)-1],
		"bad level": append(enc[:len(enc)-1], 99),
		"trailing":  append(append([]byte{}, enc...), 0),
	} {
		if err := d.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
