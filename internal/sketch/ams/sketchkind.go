package ams

import (
	"fmt"

	"repro/internal/sketch"
)

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindAMS,
		Name:    "ams",
		Version: 1,
		// AMS's per-copy estimator has constant relative error; copies
		// only tighten the success probability, so eps maps to a copy
		// count the way δ maps to medians elsewhere.
		New: func(eps float64, seed uint64) sketch.Sketch {
			if eps <= 0 || eps > 1 {
				panic(fmt.Sprintf("ams: epsilon must be in (0, 1], got %v", eps))
			}
			return New(int(2/eps)+1, seed)
		},
		Decode: func(payload []byte) (sketch.Sketch, error) {
			var s Sketch
			if err := s.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &s, nil
		},
	})
}

// Kind implements sketch.Sketch.
func (s *Sketch) Kind() sketch.Kind { return sketch.KindAMS }

// Seed implements sketch.Sketch.
func (s *Sketch) Seed() uint64 { return s.seed }

// Digest implements sketch.Sketch.
func (s *Sketch) Digest() uint64 {
	return sketch.ConfigDigest(sketch.KindAMS, uint64(len(s.maxLvl)), s.seed)
}
