package ll

import (
	"errors"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	for _, mk := range []func(int, uint64) *Sketch{New, NewWeak} {
		s := mk(128, 9)
		for x := uint64(0); x < 20000; x++ {
			s.Process(x)
		}
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Sketch
		if err := got.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		if got.Estimate() != s.Estimate() {
			t.Error("estimate changed across round trip")
		}
		if err := got.Merge(s); err != nil {
			t.Errorf("decoded sketch cannot merge with original: %v", err)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := New(16, 1)
	s.Process(5)
	enc, _ := s.MarshalBinary()
	var d Sketch
	for name, data := range map[string][]byte{
		"empty":        nil,
		"magic":        append([]byte("XXX"), enc[3:]...),
		"weak flag":    append([]byte{'L', 'L', '1', 7}, enc[4:]...),
		"truncated":    enc[:len(enc)-1],
		"bad register": append(enc[:len(enc)-1], 200),
		"trailing":     append(append([]byte{}, enc...), 0),
	} {
		if err := d.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
