package ll

import "repro/internal/sketch"

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindLogLog,
		Name:    "hll",
		Version: 1,
		New: func(eps float64, seed uint64) sketch.Sketch {
			return New(NumRegsForEpsilon(eps), seed)
		},
		Decode: func(payload []byte) (sketch.Sketch, error) {
			var s Sketch
			if err := s.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &s, nil
		},
	})
}

// Kind implements sketch.Sketch.
func (s *Sketch) Kind() sketch.Kind { return sketch.KindLogLog }

// Seed implements sketch.Sketch.
func (s *Sketch) Seed() uint64 { return s.seed }

// Digest implements sketch.Sketch.
func (s *Sketch) Digest() uint64 {
	var weak uint64
	if s.weak {
		weak = 1
	}
	return sketch.ConfigDigest(sketch.KindLogLog, uint64(s.numRegs), s.seed, weak)
}
