package ll

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sketch"
)

// ErrCorrupt is returned when decoding a malformed sketch.
var ErrCorrupt = fmt.Errorf("ll: corrupt sketch encoding: %w", sketch.ErrCorrupt)

// Wire format: magic "LL1", weak flag byte, 8-byte seed, uvarint
// register count, then one byte per register.

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := []byte{'L', 'L', '1', boolByte(s.weak)}
	b = binary.LittleEndian.AppendUint64(b, s.seed)
	b = binary.AppendUvarint(b, uint64(s.numRegs))
	b = append(b, s.regs...)
	return b, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing
// s's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 13 || data[0] != 'L' || data[1] != 'L' || data[2] != '1' {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if data[3] > 1 {
		return fmt.Errorf("%w: bad weak flag", ErrCorrupt)
	}
	weak := data[3] == 1
	seed := binary.LittleEndian.Uint64(data[4:12])
	rest := data[12:]
	numRegs, n := binary.Uvarint(rest)
	if n <= 0 || numRegs < 16 || numRegs > 1<<26 {
		return fmt.Errorf("%w: bad register count", ErrCorrupt)
	}
	rest = rest[n:]
	if uint64(len(rest)) != numRegs {
		return fmt.Errorf("%w: payload %d bytes, want %d", ErrCorrupt, len(rest), numRegs)
	}
	tmp := newSketch(int(numRegs), seed, weak)
	for i, r := range rest {
		if r > 63 {
			return fmt.Errorf("%w: register %d value %d out of range", ErrCorrupt, i, r)
		}
		tmp.regs[i] = r
	}
	*s = *tmp
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
