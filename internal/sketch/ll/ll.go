// Package ll implements a HyperLogLog-style register sketch
// (Durand–Flajolet LogLog 2003 / Flajolet et al. HLL 2007). It
// postdates the paper and is included as the space-efficiency frontier
// in the E4 space table: HLL spends O(log log m) bits per register
// where the GT sampler spends O(log m) bits per sample slot, at the
// price of requiring (nearly) fully random hash functions for its
// analysis — the assumption the paper set out to remove.
//
// Registers merge by max, so HLL also supports distributed unions
// with shared seeds.
package ll

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrMismatch is returned when merging sketches with different
// configurations.
var ErrMismatch = fmt.Errorf("ll: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)

// Sketch is an HLL-style distinct count sketch. Construct with New or
// NewWeak.
type Sketch struct {
	numRegs   int
	seed      uint64
	weak      bool
	regHash   hashing.Family
	levelHash hashing.Family
	regs      []uint8
}

// New returns a sketch with numRegs registers (standard error
// ≈ 1.04/√numRegs under ideal hashing). numRegs must be ≥ 16. The
// sketch hashes with simple tabulation, approximating the fully
// random functions HLL's analysis assumes.
func New(numRegs int, seed uint64) *Sketch {
	return newSketch(numRegs, seed, false)
}

// NewWeak returns a sketch hashed with pairwise-independent functions
// only. HLL's estimator is biased under such weak hashing on
// structured key sets; NewWeak exists for the E1/E10 experiments that
// demonstrate why the paper's pairwise-only guarantee matters.
func NewWeak(numRegs int, seed uint64) *Sketch {
	return newSketch(numRegs, seed, true)
}

func newSketch(numRegs int, seed uint64, weak bool) *Sketch {
	if numRegs < 16 {
		panic(fmt.Sprintf("ll: numRegs must be >= 16, got %d", numRegs))
	}
	sm := hashing.NewSplitMix64(seed)
	s := &Sketch{
		numRegs: numRegs,
		seed:    seed,
		weak:    weak,
		regs:    make([]uint8, numRegs),
	}
	if weak {
		s.regHash = hashing.NewPairwise(sm.Next())
		s.levelHash = hashing.NewPairwise(sm.Next())
	} else {
		s.regHash = hashing.NewTabulation(sm.Next())
		s.levelHash = hashing.NewTabulation(sm.Next())
	}
	return s
}

// Process observes one occurrence of label.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	reg := s.regHash.Hash(label) % uint64(s.numRegs)
	rank := uint8(hashing.GeometricLevel(s.levelHash.Hash(label))) + 1
	if rank > s.regs[reg] {
		s.regs[reg] = rank
	}
}

// Estimate returns the HLL estimate with the small-range
// linear-counting correction.
func (s *Sketch) Estimate() float64 {
	m := float64(s.numRegs)
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(s.numRegs) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

func alpha(m int) float64 {
	switch {
	case m <= 16:
		return 0.673
	case m <= 32:
		return 0.697
	case m <= 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds other into s by per-register maximum. Both sketches must
// share register count and seed.
func (s *Sketch) Merge(o sketch.Sketch) error {
	other, ok := o.(*Sketch)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *ll.Sketch", ErrMismatch, o)
	}
	if other == nil || s.numRegs != other.numRegs || s.seed != other.seed || s.weak != other.weak {
		return ErrMismatch
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	return nil
}

// SizeBytes returns the sketch payload size: one byte per register.
func (s *Sketch) SizeBytes() int { return s.numRegs }

// NumRegisters returns the register count.
func (s *Sketch) NumRegisters() int { return s.numRegs }

// Reset clears the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	for i := range s.regs {
		s.regs[i] = 0
	}
}

// NumRegsForEpsilon returns the register count targeting relative
// error eps (stderr ≈ 1.04/√m), rounded up to ≥ 16.
func NumRegsForEpsilon(eps float64) int {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("ll: epsilon must be in (0, 1], got %v", eps))
	}
	m := int(1.04*1.04/(eps*eps) + 0.5)
	if m < 16 {
		m = 16
	}
	return m
}
