package ll

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	const truth = 100000
	s := New(1024, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
		s.Process(x)
	}
	got := s.Estimate()
	if rel := math.Abs(got-truth) / truth; rel > 0.12 {
		t.Errorf("estimate %.0f vs %d: rel err %.3f", got, truth, rel)
	}
}

func TestSmallRangeCorrection(t *testing.T) {
	// Linear counting must make small cardinalities accurate.
	s := New(1024, 7)
	const truth = 200
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	got := s.Estimate()
	if rel := math.Abs(got-truth) / truth; rel > 0.10 {
		t.Errorf("small-range estimate %.0f vs %d: rel err %.3f", got, truth, rel)
	}
}

func TestEmpty(t *testing.T) {
	if got := New(64, 1).Estimate(); got != 0 {
		t.Errorf("empty estimate = %v, want 0 (linear counting of m zeros)", got)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, both := New(256, 3), New(256, 3), New(256, 3)
	for x := uint64(0); x < 30000; x++ {
		a.Process(x)
		both.Process(x)
	}
	for x := uint64(20000); x < 60000; x++ {
		b.Process(x)
		both.Process(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged %.0f != union %.0f", a.Estimate(), both.Estimate())
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(64, 1)
	if err := a.Merge(New(128, 1)); err == nil {
		t.Error("register mismatch accepted")
	}
	if err := a.Merge(New(64, 2)); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestResetAndAccessors(t *testing.T) {
	s := New(128, 1)
	for x := uint64(0); x < 10000; x++ {
		s.Process(x)
	}
	if s.SizeBytes() != 128 || s.NumRegisters() != 128 {
		t.Errorf("Size=%d NumRegisters=%d", s.SizeBytes(), s.NumRegisters())
	}
	s.Reset()
	if got := s.Estimate(); got != 0 {
		t.Errorf("estimate after Reset = %v", got)
	}
}

func TestAlphaMonotone(t *testing.T) {
	for _, m := range []int{16, 32, 64, 128, 1024} {
		a := alpha(m)
		if a <= 0.6 || a >= 0.8 {
			t.Errorf("alpha(%d) = %v out of sane range", m, a)
		}
	}
}

func TestNumRegsForEpsilon(t *testing.T) {
	if m := NumRegsForEpsilon(0.1); m < 100 || m > 120 {
		t.Errorf("NumRegsForEpsilon(0.1) = %d, want ~108", m)
	}
	if m := NumRegsForEpsilon(0.9); m != 16 {
		t.Errorf("NumRegsForEpsilon(0.9) = %d, want clamp to 16", m)
	}
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NumRegsForEpsilon(%v) did not panic", bad)
				}
			}()
			NumRegsForEpsilon(bad)
		}()
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(8, ...) did not panic")
		}
	}()
	New(8, 1)
}

// TestWeakHashingBias characterizes HLL's reliance on strong hashing:
// with pairwise-only functions on sequential keys the estimate is
// systematically biased (40%+ in our runs), which is the gap the
// paper's pairwise-sufficient scheme closes. Kept as a Log rather than
// a hard assertion since the bias magnitude is seed-dependent.
func TestWeakHashingBias(t *testing.T) {
	const truth = 100000
	s := NewWeak(1024, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	rel := math.Abs(s.Estimate()-truth) / truth
	t.Logf("weak-hash HLL relative error on sequential keys: %.3f", rel)
	if err := New(64, 1).Merge(NewWeak(64, 1)); err == nil {
		t.Error("strong/weak merge accepted")
	}
}
