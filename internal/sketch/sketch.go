// Package sketch defines the repository's unified mergeable-sketch
// abstraction. Every summary in this repository — the paper's
// coordinated sampler, the FM/AMS/BJKST/KMV/LogLog baselines, the
// sliding-window extension, and the exact ground truth — shares one
// algebra: process labels, merge commutatively/associatively/
// idempotently with a compatibly-configured peer, estimate. This
// package names that algebra (the Sketch interface), assigns each
// implementation a stable Kind tag in a process-wide registry, and
// wraps every encoding in a self-describing envelope (kind + format
// version + canonical config digest) so the networked coordinator,
// the simulator, and the public API can carry any kind without
// per-algorithm special cases.
//
// Implementations register themselves from an init function in their
// own package; importing repro/internal/sketch/kinds (blank) pulls in
// every kind the repository ships. The conformance suite in
// sketchtest asserts the merge algebra for each registered kind.
package sketch

import (
	"errors"
	"fmt"
)

// Kind is the stable one-byte tag identifying a sketch algorithm on
// the wire. Values are part of the envelope format: never renumber or
// reuse them.
type Kind uint8

const (
	// KindGT is the paper's coordinated sampler (core.Estimator).
	KindGT Kind = 1
	// KindFM is the Flajolet–Martin / PCSA baseline.
	KindFM Kind = 2
	// KindAMS is the Alon–Matias–Szegedy F0 baseline.
	KindAMS Kind = 3
	// KindBJKST is the BJKST distinct-elements baseline.
	KindBJKST Kind = 4
	// KindKMV is the K-minimum-values / bottom-k baseline.
	KindKMV Kind = 5
	// KindLogLog is the LogLog/HLL-style baseline.
	KindLogLog Kind = 6
	// KindWindow is the sliding-window coordinated sampler.
	KindWindow Kind = 7
	// KindExact is the exact (linear-space) distinct set.
	KindExact Kind = 8
)

// String implements fmt.Stringer: the registered name when known, a
// numeric form otherwise.
func (k Kind) String() string {
	if info, ok := Lookup(k); ok {
		return info.Name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Sketch is the mergeable-summary algebra every registered kind
// implements. Merge must be commutative, associative, and idempotent
// across compatibly-configured sketches (equal Digest), and must
// refuse anything else with an error wrapping ErrMismatch. Marshal
// encodings must be canonical: equal sketch state encodes to equal
// bytes, which is what lets the server assert concurrent absorbs are
// bit-identical to serial ones.
type Sketch interface {
	// Process observes one occurrence of label (unit value).
	Process(label uint64)
	// Estimate returns the sketch's primary estimate — the distinct
	// count of the observed multiset union.
	Estimate() float64
	// Merge folds other into the receiver. other must be the same
	// concrete kind with the same configuration digest; anything else
	// returns an error wrapping ErrMismatch and leaves the receiver
	// unchanged.
	Merge(other Sketch) error
	// MarshalBinary returns the kind's canonical payload encoding
	// (without the envelope header; see Envelope).
	MarshalBinary() ([]byte, error)
	// Kind returns the sketch's registered kind tag.
	Kind() Kind
	// Seed returns the coordination seed (0 for seedless kinds).
	Seed() uint64
	// Digest returns the canonical configuration digest: equal exactly
	// when two sketches of the same kind are merge-compatible. The
	// envelope carries it so a decoder can refuse a mismatched payload
	// before interpreting it, and the server keys merge groups on it.
	Digest() uint64
}

// Weighted is the optional capability of kinds that track a fixed
// per-label value (for duplicate-insensitive sums).
type Weighted interface {
	ProcessWeighted(label, value uint64)
}

// Summer is the optional capability of kinds that can estimate the
// duplicate-insensitive sum of per-label values.
type Summer interface {
	EstimateSum() float64
}

// PredicateEstimator is the optional capability of kinds that can
// estimate predicate-restricted counts and sums (the paper's
// CountWhere/SumWhere queries).
type PredicateEstimator interface {
	EstimateCountWhere(pred func(label uint64) bool) float64
	EstimateSumWhere(pred func(label uint64) bool) float64
}

// Describer is the optional capability of kinds that expose their
// configuration parameters for introspection surfaces like /statsz.
// Values must be JSON-encodable.
type Describer interface {
	Describe() map[string]any
}

// SetAlgebra is the optional capability of kinds whose coordinated
// samples answer pairwise set-expression estimates against a sibling
// sketch of the same kind and configuration (equal Digest): the
// estimators Cohen's coordinated-sample line and the MTS
// set-expression sketch build on. Every method must refuse a sketch
// of another kind, seed, or configuration with an error wrapping
// ErrMismatch — uncoordinated sketches share no sample space, so
// "their intersection" is not a well-posed question. Kinds without
// this capability are gated at query time exactly like Summer.
type SetAlgebra interface {
	// SetIntersect estimates |A ∩ B| of the two sketched label sets.
	SetIntersect(other Sketch) (float64, error)
	// SetDiff estimates |A \ B| (labels in the receiver's stream but
	// not in other's).
	SetDiff(other Sketch) (float64, error)
	// SetJaccard estimates the Jaccard similarity |A∩B| / |A∪B|.
	SetJaccard(other Sketch) (float64, error)
}

// SetCombiner is the optional capability of kinds whose set
// operations close over the sketch domain: the intersection or
// difference of two coordinated samples is itself a valid coordinated
// sample of the result set, so set operators can nest — the property
// a recursive expression evaluator needs for interior nodes like
// (A ∪ B) ∩ C. The returned sketch must estimate exactly what the
// corresponding SetAlgebra scalar would report, and the receiver and
// other must be left unchanged. Scalar-only kinds (e.g. bottom-k,
// whose k-minimum set of an intersection is not derivable) implement
// SetAlgebra alone and can only answer set operators at the root.
type SetCombiner interface {
	// CombineIntersect returns a sketch of A ∩ B.
	CombineIntersect(other Sketch) (Sketch, error)
	// CombineDiff returns a sketch of A \ B.
	CombineDiff(other Sketch) (Sketch, error)
}

// Accuracy is the optional capability of kinds that can state their
// configured relative standard error for the primary distinct-count
// estimate. Query surfaces use it for per-node error-bound reporting;
// derived bounds (intersections, differences) degrade it by the
// observed selectivity.
type Accuracy interface {
	// RelativeStdErr returns the configured relative standard error
	// (e.g. ε for the paper's sampler, 1/√(k-2) for bottom-k).
	RelativeStdErr() float64
}

// Sentinel errors every kind funnels its failures through, so callers
// can classify without knowing the concrete package: errors.Is(err,
// sketch.ErrMismatch) works for a core, fm, or window mismatch alike.
var (
	// ErrMismatch reports a merge between incompatibly-configured
	// sketches (different kind, seed, dimensions, or hash family).
	ErrMismatch = errors.New("sketch: configuration mismatch")
	// ErrCorrupt reports an encoding that failed validation.
	ErrCorrupt = errors.New("sketch: corrupt encoding")
	// ErrUnknownKind reports an envelope whose kind tag has no
	// registered decoder in this process.
	ErrUnknownKind = errors.New("sketch: unknown kind")
)

// ConfigDigest hashes a kind tag and its configuration fields into
// the canonical 64-bit digest carried by envelopes. It is FNV-1a over
// the kind byte followed by each field in little-endian order; two
// sketches are merge-compatible exactly when their kinds and every
// config field agree, which the digest captures (up to hash
// collisions, which at 64 bits never matter for the handful of
// configurations a deployment runs).
func ConfigDigest(kind Kind, fields ...uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(kind)
	h *= prime64
	for _, f := range fields {
		for i := 0; i < 8; i++ {
			h ^= (f >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return h
}
