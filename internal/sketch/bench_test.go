package sketch_test

import (
	"testing"

	"repro/internal/hashing"
	"repro/internal/sketch"

	_ "repro/internal/sketch/kinds"
)

// benchSketch builds a populated sketch of the given kind so the
// envelope benchmarks measure realistic payload sizes, not empty
// headers.
func benchSketch(b *testing.B, info sketch.KindInfo) sketch.Sketch {
	b.Helper()
	s := info.New(0.1, 1)
	r := hashing.NewXoshiro256(7)
	for i := 0; i < 4096; i++ {
		s.Process(r.Uint64n(1 << 20))
	}
	return s
}

// BenchmarkEnvelopeEncode measures AppendEnvelope per registered kind:
// the marshal-plus-header cost a site pays for every message it ships.
func BenchmarkEnvelopeEncode(b *testing.B) {
	for _, info := range sketch.Kinds() {
		b.Run(info.Name, func(b *testing.B) {
			s := benchSketch(b, info)
			env, err := sketch.Envelope(s)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 0, len(env))
			b.SetBytes(int64(len(env)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				if buf, err = sketch.AppendEnvelope(buf, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnvelopeOpen measures Open per registered kind: the
// validate-route-decode-crosscheck cost the coordinator pays for every
// envelope it absorbs.
func BenchmarkEnvelopeOpen(b *testing.B) {
	for _, info := range sketch.Kinds() {
		b.Run(info.Name, func(b *testing.B) {
			env, err := sketch.Envelope(benchSketch(b, info))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(env)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sketch.Open(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
