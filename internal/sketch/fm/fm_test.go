package fm

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestAccuracy(t *testing.T) {
	const truth = 100000
	s := New(256, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
		s.Process(x) // duplicates are free
	}
	got := s.Estimate()
	// PCSA with pairwise hashing is noticeably biased; allow 35%.
	if rel := math.Abs(got-truth) / truth; rel > 0.35 {
		t.Errorf("estimate %.0f vs %d: rel err %.3f", got, truth, rel)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(64, 9), New(64, 9)
	for x := uint64(0); x < 1000; x++ {
		a.Process(x)
		b.Process(x)
	}
	if a.Estimate() != b.Estimate() {
		t.Error("same seed produced different estimates")
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, both := New(64, 3), New(64, 3), New(64, 3)
	for x := uint64(0); x < 5000; x++ {
		a.Process(x)
		both.Process(x)
	}
	for x := uint64(3000); x < 9000; x++ {
		b.Process(x)
		both.Process(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged %.0f != union %.0f", a.Estimate(), both.Estimate())
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(64, 3)
	if err := a.Merge(New(32, 3)); err == nil {
		t.Error("numMaps mismatch accepted")
	}
	if err := a.Merge(New(64, 4)); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestEmptyAndReset(t *testing.T) {
	s := New(32, 1)
	if got := s.Estimate(); got != float64(32)/phi {
		// All-zero bitmaps give mean R = 0 -> m/phi; this is PCSA's
		// well-known small-cardinality bias, recorded here as a
		// characterization test.
		t.Errorf("empty estimate = %v, want %v", got, float64(32)/phi)
	}
	for x := uint64(0); x < 10000; x++ {
		s.Process(x)
	}
	before := s.Estimate()
	s.Reset()
	for x := uint64(0); x < 10000; x++ {
		s.Process(x)
	}
	if s.Estimate() != before {
		t.Error("Reset changed behaviour")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(64, 1).SizeBytes(); got != 512 {
		t.Errorf("SizeBytes = %d, want 512", got)
	}
	if got := New(64, 1).NumMaps(); got != 64 {
		t.Errorf("NumMaps = %d, want 64", got)
	}
}

func TestNumMapsForEpsilon(t *testing.T) {
	if m := NumMapsForEpsilon(0.1); m < 50 || m > 70 {
		t.Errorf("NumMapsForEpsilon(0.1) = %d, want ~61", m)
	}
	for _, bad := range []float64{0, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NumMapsForEpsilon(%v) did not panic", bad)
				}
			}()
			NumMapsForEpsilon(bad)
		}()
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) did not panic")
		}
	}()
	New(0, 1)
}

func TestMonotoneInDistinct(t *testing.T) {
	// The estimate must grow (weakly) as more distinct items arrive.
	s := New(128, 5)
	last := 0.0
	r := hashing.NewXoshiro256(1)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20000; j++ {
			s.Process(r.Uint64())
		}
		est := s.Estimate()
		if est < last {
			t.Fatalf("estimate decreased: %.0f -> %.0f", last, est)
		}
		last = est
	}
}

// TestWeakHashingBias is a characterization of the paper's motivating
// observation: PCSA under pairwise-only hashing is biased on
// structured key sets, while the strong-hash variant is accurate on
// the same input (see TestAccuracy). The GT sampler needs no such
// strengthening.
func TestWeakHashingBias(t *testing.T) {
	const truth = 100000
	s := NewWeak(256, 42)
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	rel := math.Abs(s.Estimate()-truth) / truth
	if rel < 0.2 {
		t.Logf("note: weak-hash FM unexpectedly accurate on this seed (rel=%.3f)", rel)
	}
	// Weak and strong sketches must not merge.
	if err := New(256, 42).Merge(NewWeak(256, 42)); err == nil {
		t.Error("strong/weak merge accepted")
	}
}
