package fm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sketch"
)

// ErrCorrupt is returned when decoding a malformed sketch.
var ErrCorrupt = fmt.Errorf("fm: corrupt sketch encoding: %w", sketch.ErrCorrupt)

// Wire format: magic "FM1", weak flag byte, 8-byte seed, uvarint
// numMaps, then numMaps 8-byte bitmaps.

// MarshalBinary encodes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := []byte{'F', 'M', '1', boolByte(s.weak)}
	b = binary.LittleEndian.AppendUint64(b, s.seed)
	b = binary.AppendUvarint(b, uint64(s.numMaps))
	for _, bm := range s.bitmaps {
		b = binary.LittleEndian.AppendUint64(b, bm)
	}
	return b, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing
// s's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 13 || data[0] != 'F' || data[1] != 'M' || data[2] != '1' {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if data[3] > 1 {
		return fmt.Errorf("%w: bad weak flag %d", ErrCorrupt, data[3])
	}
	weak := data[3] == 1
	seed := binary.LittleEndian.Uint64(data[4:12])
	rest := data[12:]
	numMaps, n := binary.Uvarint(rest)
	if n <= 0 || numMaps == 0 || numMaps > 1<<24 {
		return fmt.Errorf("%w: bad numMaps", ErrCorrupt)
	}
	rest = rest[n:]
	if uint64(len(rest)) != 8*numMaps {
		return fmt.Errorf("%w: payload %d bytes, want %d", ErrCorrupt, len(rest), 8*numMaps)
	}
	tmp := newSketch(int(numMaps), seed, weak)
	for i := range tmp.bitmaps {
		tmp.bitmaps[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	*s = *tmp
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
