// Package fm implements Flajolet–Martin probabilistic counting with
// stochastic averaging (PCSA, 1985) — the principal prior art the
// paper compares its coordinated sampling scheme against.
//
// PCSA hashes every item to one of m bitmaps and sets the bit at the
// item's geometric level; the estimate combines the position of the
// lowest unset bit across bitmaps. Its analysis assumes fully random
// hash functions; run with the pairwise functions available in small
// space, its accuracy degrades — one of the motivations the paper
// gives for its sampling-based scheme (experiment E1 measures this).
// Bitmaps merge by OR, so FM sketches also support distributed unions
// when seeds are shared.
package fm

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// phi is the Flajolet–Martin correction constant.
const phi = 0.77351

// ErrMismatch is returned when merging sketches with different
// configurations.
var ErrMismatch = fmt.Errorf("fm: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)

// Sketch is a PCSA distinct-count sketch. Construct with New or
// NewWeak.
type Sketch struct {
	seed       uint64
	weak       bool
	numMaps    int
	bucketHash hashing.Family
	levelHash  hashing.Family
	bitmaps    []uint64
}

// New returns a PCSA sketch with numMaps bitmaps (the space/accuracy
// knob; standard error ≈ 0.78/√numMaps under ideal hashing). numMaps
// must be ≥ 1. Equal (numMaps, seed) pairs produce mergeable sketches.
//
// The sketch hashes with simple tabulation, which behaves close to the
// fully random functions FM's analysis assumes. That randomness budget
// is exactly what the paper's scheme avoids needing: see NewWeak.
func New(numMaps int, seed uint64) *Sketch {
	return newSketch(numMaps, seed, false)
}

// NewWeak returns a PCSA sketch hashed with pairwise-independent
// functions only — the same independence budget the GT sampler runs
// on. FM's estimator is biased under such weak hashing on structured
// key sets (experiment E1 quantifies this); NewWeak exists to
// demonstrate the gap the paper's abstract claims.
func NewWeak(numMaps int, seed uint64) *Sketch {
	return newSketch(numMaps, seed, true)
}

func newSketch(numMaps int, seed uint64, weak bool) *Sketch {
	if numMaps < 1 {
		panic(fmt.Sprintf("fm: numMaps must be >= 1, got %d", numMaps))
	}
	sm := hashing.NewSplitMix64(seed)
	s := &Sketch{
		seed:    seed,
		weak:    weak,
		numMaps: numMaps,
		bitmaps: make([]uint64, numMaps),
	}
	if weak {
		s.bucketHash = hashing.NewPairwise(sm.Next())
		s.levelHash = hashing.NewPairwise(sm.Next())
	} else {
		s.bucketHash = hashing.NewTabulation(sm.Next())
		s.levelHash = hashing.NewTabulation(sm.Next())
	}
	return s
}

// Process observes one occurrence of label.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	bucket := s.bucketHash.Hash(label) % uint64(s.numMaps)
	lvl := hashing.GeometricLevel(s.levelHash.Hash(label))
	s.bitmaps[bucket] |= 1 << uint(lvl)
}

// Estimate returns the distinct-count estimate m/φ · 2^(mean lowest
// unset bit).
func (s *Sketch) Estimate() float64 {
	sum := 0
	for _, bm := range s.bitmaps {
		sum += bits.TrailingZeros64(^bm) // index of lowest zero bit
	}
	mean := float64(sum) / float64(s.numMaps)
	return float64(s.numMaps) / phi * math.Pow(2, mean)
}

// Merge ORs other into s; afterwards s estimates the union of the two
// streams. Both sketches must share numMaps and seed.
func (s *Sketch) Merge(o sketch.Sketch) error {
	other, ok := o.(*Sketch)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *fm.Sketch", ErrMismatch, o)
	}
	if other == nil || s.numMaps != other.numMaps || s.seed != other.seed || s.weak != other.weak {
		return ErrMismatch
	}
	for i := range s.bitmaps {
		s.bitmaps[i] |= other.bitmaps[i]
	}
	return nil
}

// SizeBytes returns the sketch's payload size: 8 bytes per bitmap.
// (Configuration metadata is excluded, mirroring how the other
// sketches are charged.)
func (s *Sketch) SizeBytes() int { return 8 * s.numMaps }

// NumMaps returns the number of bitmaps.
func (s *Sketch) NumMaps() int { return s.numMaps }

// Reset clears the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	for i := range s.bitmaps {
		s.bitmaps[i] = 0
	}
}

// NumMapsForEpsilon returns the bitmap count targeting relative error
// eps under PCSA's ideal-hash analysis (stderr ≈ 0.78/√m).
func NumMapsForEpsilon(eps float64) int {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("fm: epsilon must be in (0, 1], got %v", eps))
	}
	m := int(0.78*0.78/(eps*eps) + 0.5)
	if m < 2 {
		m = 2
	}
	return m
}
