package sketch_test

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/sketch/sketchtest"

	// Register every kind: the suite must cover the full registry.
	_ "repro/internal/sketch/kinds"
)

// TestConformance holds every registered kind to the mergeable-sketch
// contract. It also pins the expected registry contents: a kind
// vanishing from (or appearing in) the registry is a deliberate act,
// recorded here.
func TestConformance(t *testing.T) {
	want := map[string]sketch.Kind{
		"gt":     sketch.KindGT,
		"fm":     sketch.KindFM,
		"ams":    sketch.KindAMS,
		"bjkst":  sketch.KindBJKST,
		"kmv":    sketch.KindKMV,
		"hll":    sketch.KindLogLog,
		"window": sketch.KindWindow,
		"exact":  sketch.KindExact,
	}
	kinds := sketch.Kinds()
	if len(kinds) != len(want) {
		t.Errorf("registry has %d kinds, want %d", len(kinds), len(want))
	}
	for _, info := range kinds {
		if want[info.Name] != info.Kind {
			t.Errorf("kind %q registered as tag %d, want %d", info.Name, info.Kind, want[info.Name])
		}
		delete(want, info.Name)
		info := info
		t.Run(info.Name, func(t *testing.T) { sketchtest.Conform(t, info) })
	}
	for name := range want {
		t.Errorf("kind %q missing from registry", name)
	}
}
