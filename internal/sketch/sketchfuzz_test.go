// Package sketchfuzz_test cross-checks that every baseline sketch
// decoder survives arbitrary input without panicking — the property a
// coordinator needs when absorbing messages from untrusted sites.
package sketchfuzz_test

import (
	"testing"

	"repro/internal/hashing"
	"repro/internal/sketch/ams"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
)

type decoder interface {
	UnmarshalBinary([]byte) error
}

func TestDecodersNeverPanic(t *testing.T) {
	encoders := map[string]func() ([]byte, func() decoder){
		"fm": func() ([]byte, func() decoder) {
			s := fm.New(32, 1)
			for x := uint64(0); x < 1000; x++ {
				s.Process(x)
			}
			b, _ := s.MarshalBinary()
			return b, func() decoder { return &fm.Sketch{} }
		},
		"ams": func() ([]byte, func() decoder) {
			s := ams.New(5, 1)
			for x := uint64(0); x < 1000; x++ {
				s.Process(x)
			}
			b, _ := s.MarshalBinary()
			return b, func() decoder { return &ams.Sketch{} }
		},
		"kmv": func() ([]byte, func() decoder) {
			s := kmv.New(32, 1)
			for x := uint64(0); x < 1000; x++ {
				s.Process(x)
			}
			b, _ := s.MarshalBinary()
			return b, func() decoder { return &kmv.Sketch{} }
		},
		"bjkst": func() ([]byte, func() decoder) {
			s := bjkst.New(32, 1)
			for x := uint64(0); x < 1000; x++ {
				s.Process(x)
			}
			b, _ := s.MarshalBinary()
			return b, func() decoder { return &bjkst.Sketch{} }
		},
		"ll": func() ([]byte, func() decoder) {
			s := ll.New(32, 1)
			for x := uint64(0); x < 1000; x++ {
				s.Process(x)
			}
			b, _ := s.MarshalBinary()
			return b, func() decoder { return &ll.Sketch{} }
		},
	}
	r := hashing.NewXoshiro256(3)
	for name, mk := range encoders {
		enc, newDec := mk()
		for trial := 0; trial < 2000; trial++ {
			var data []byte
			if trial%2 == 0 {
				data = make([]byte, r.Intn(120))
				for i := range data {
					data[i] = byte(r.Uint64())
				}
			} else {
				data = append([]byte(nil), enc...)
				for k := 0; k < 1+r.Intn(4); k++ {
					data[r.Intn(len(data))] = byte(r.Uint64())
				}
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s: decoder panicked on trial %d: %v", name, trial, p)
					}
				}()
				_ = newDec().UnmarshalBinary(data)
			}()
		}
	}
}
