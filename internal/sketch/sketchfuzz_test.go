// Decoder-robustness suite for the registry: every registered kind's
// decoder — reached the same way the coordinator reaches it, through
// sketch.Open — must survive arbitrary and corrupted envelopes
// without panicking. The table of per-type encoders the pre-registry
// version of this file hand-maintained is gone: iterating
// sketch.Kinds() means a newly registered kind is fuzzed with no test
// edit at all.
package sketch_test

import (
	"bytes"
	"testing"

	"repro/internal/hashing"
	"repro/internal/sketch"

	// Register every kind so the suite covers the full registry.
	_ "repro/internal/sketch/kinds"
)

// seedEnvelope builds a valid, populated envelope for the kind.
func seedEnvelope(tb testing.TB, info sketch.KindInfo) []byte {
	tb.Helper()
	sk := info.New(0.25, 1)
	for x := uint64(0); x < 1000; x++ {
		sk.Process(x)
	}
	env, err := sketch.Envelope(sk)
	if err != nil {
		tb.Fatalf("%s: envelope: %v", info.Name, err)
	}
	return env
}

func TestDecodersNeverPanic(t *testing.T) {
	for _, info := range sketch.Kinds() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			enc := seedEnvelope(t, info)
			r := hashing.NewXoshiro256(3)
			for trial := 0; trial < 2000; trial++ {
				var data []byte
				if trial%2 == 0 {
					data = make([]byte, r.Intn(140))
					for i := range data {
						data[i] = byte(r.Uint64())
					}
				} else {
					data = append([]byte(nil), enc...)
					for k := 0; k < 1+r.Intn(4); k++ {
						data[r.Intn(len(data))] = byte(r.Uint64())
					}
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							t.Fatalf("Open panicked on trial %d: %v", trial, p)
						}
					}()
					_, _ = sketch.Open(data)
				}()
			}
		})
	}
}

// FuzzSketchOpen drives Open with arbitrary bytes: it must never
// panic, and anything it accepts must re-envelope to bytes Open
// accepts again with the same kind and digest.
func FuzzSketchOpen(f *testing.F) {
	for _, info := range sketch.Kinds() {
		f.Add(seedEnvelope(f, info))
	}
	f.Add([]byte{})
	f.Add([]byte{sketch.EnvelopeMagic0, sketch.EnvelopeMagic1})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := sketch.Open(data)
		if err != nil {
			return
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatalf("accepted sketch does not re-envelope: %v", err)
		}
		// The envelope header is canonical, so the re-encoded header
		// must equal the input's.
		if !bytes.Equal(env[:sketch.EnvelopeHeaderSize], data[:sketch.EnvelopeHeaderSize]) {
			t.Fatalf("re-enveloped header differs from input header")
		}
		if _, err := sketch.Open(env); err != nil {
			t.Fatalf("re-enveloped sketch rejected: %v", err)
		}
	})
}
