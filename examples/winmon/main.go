// Winmon demonstrates the sliding-window extension in the distributed
// setting: link monitors observe timestamped flows through a simulated
// day with a traffic spike, periodically ship their window sketches,
// and the coordinator reports "distinct flows across all links in the
// last hour" — a number that must RISE during the spike and FALL back
// afterwards, which no merge of infinite-window sketches can do.
//
// Run with: go run ./examples/winmon
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/unionstream"
)

const (
	numMonitors   = 4
	ticksPerHour  = 3600
	hours         = 6
	flowsPerTick  = 20    // per monitor
	baseFlowPool  = 30000 // flows active in a normal hour
	spikeFlowPool = 90000 // flows active during the spike (hour 3)
)

func main() {
	opts := unionstream.WindowOptions{Epsilon: 0.05, Seed: 7, MaxLevel: 24}

	monitors := make([]*unionstream.WindowSketch, numMonitors)
	for i := range monitors {
		sk, err := unionstream.NewWindow(opts)
		if err != nil {
			log.Fatal(err)
		}
		monitors[i] = sk
	}

	// Exact per-hour unions for grading.
	hourlyExact := make([]map[uint64]bool, hours)
	for h := range hourlyExact {
		hourlyExact[h] = make(map[uint64]bool)
	}

	rngs := make([]*rand.Rand, numMonitors)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(42 + i)))
	}

	for hour := 0; hour < hours; hour++ {
		pool := uint64(baseFlowPool)
		poolBase := uint64(hour) * 1_000_000 // hourly churn: new flow IDs
		if hour == 3 {
			pool = spikeFlowPool // the spike: 3x distinct flows
		}
		for tick := 0; tick < ticksPerHour; tick++ {
			ts := uint64(hour*ticksPerHour + tick)
			for m, sk := range monitors {
				for f := 0; f < flowsPerTick; f++ {
					flow := poolBase + rngs[m].Uint64()%pool
					if err := sk.Add(flow, ts); err != nil {
						log.Fatal(err)
					}
					hourlyExact[hour][flow] = true
				}
			}
		}

		// End of hour: monitors ship sketches; coordinator merges and
		// reports the last hour's distinct flows across all links.
		var union *unionstream.WindowSketch
		msgBytes := 0
		for _, sk := range monitors {
			msg, err := sk.MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			msgBytes += len(msg)
			dec, err := unionstream.DecodeWindow(msg)
			if err != nil {
				log.Fatal(err)
			}
			if union == nil {
				union = dec
			} else if err := union.Merge(dec); err != nil {
				log.Fatal(err)
			}
		}
		windowStart := uint64(hour * ticksPerHour)
		est, err := union.DistinctSince(windowStart)
		if err != nil {
			if errors.Is(err, unionstream.ErrCorrupt) {
				log.Fatal(err)
			}
			fmt.Printf("hour %d: window not covered (%v)\n", hour, err)
			continue
		}
		truth := len(hourlyExact[hour])
		marker := ""
		if hour == 3 {
			marker = "  <-- spike"
		}
		fmt.Printf("hour %d: distinct flows last hour = %7.0f  (exact %7d, %+.2f%%, %d KiB shipped)%s\n",
			hour, est, truth, 100*(est-float64(truth))/float64(truth), msgBytes/1024, marker)
	}
}
