// Netmon is the paper's motivating scenario: a set of network
// monitors, one per link, each observing its own packet stream with
// bounded memory. The same flow crosses several links, so per-monitor
// distinct-flow counts cannot simply be added — the operator wants the
// number of distinct flows across the whole network, and each monitor
// may send only one small message after its observation window.
//
// The example runs eight monitors concurrently (each in its own
// goroutine, as independent processes would be), generates flows with
// heavy cross-link overlap, and compares three answers: the naive sum
// of per-link counts, the coordinated-sketch union estimate, and the
// exact union.
//
// Run with: go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/unionstream"
)

const (
	numMonitors    = 8
	packetsPerLink = 200_000
	backboneFlows  = 40_000 // flows that traverse many links
	localFlows     = 10_000 // flows unique to each link
)

// monitor observes one link's packet stream and returns its sketch
// message plus its local exact distinct count (for the naive baseline).
func monitor(id int, opts unionstream.Options) (msg []byte, localDistinct int) {
	sk, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	seen := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(int64(1000 + id)))
	for p := 0; p < packetsPerLink; p++ {
		var flow uint64
		if rng.Float64() < 0.7 {
			// Backbone traffic: shared across links.
			flow = uint64(rng.Intn(backboneFlows))
		} else {
			// Link-local traffic.
			flow = uint64(1_000_000 + id*localFlows + rng.Intn(localFlows))
		}
		sk.Add(flow)
		seen[flow] = true
	}
	m, err := sk.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	return m, len(seen)
}

func main() {
	opts := unionstream.Options{Epsilon: 0.03, Delta: 0.01, Seed: 7}

	type result struct {
		msg           []byte
		localDistinct int
	}
	results := make([]result, numMonitors)
	var wg sync.WaitGroup
	for i := 0; i < numMonitors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg, local := monitor(i, opts)
			results[i] = result{msg, local}
		}(i)
	}
	wg.Wait()

	// The coordinator merges the eight messages.
	var union *unionstream.Sketch
	naiveSum := 0
	totalBytes := 0
	for i, r := range results {
		naiveSum += r.localDistinct
		totalBytes += len(r.msg)
		sk, err := unionstream.Decode(r.msg)
		if err != nil {
			log.Fatal(err)
		}
		if union == nil {
			union = sk
		} else if err := union.Merge(sk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("monitor %d: %6d local distinct flows, message %6d bytes\n",
			i, r.localDistinct, len(r.msg))
	}

	// Exact union, recomputed centrally only to grade the estimate.
	exactUnion := make(map[uint64]bool)
	for i := 0; i < numMonitors; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		for p := 0; p < packetsPerLink; p++ {
			if rng.Float64() < 0.7 {
				exactUnion[uint64(rng.Intn(backboneFlows))] = true
			} else {
				exactUnion[uint64(1_000_000+i*localFlows+rng.Intn(localFlows))] = true
			}
		}
	}

	truth := float64(len(exactUnion))
	est := union.DistinctCount()
	fmt.Printf("\nnaive sum of per-link counts: %8d  (%+.1f%% — overcounts shared flows)\n",
		naiveSum, 100*(float64(naiveSum)-truth)/truth)
	fmt.Printf("coordinated union estimate:   %8.0f  (%+.2f%%)\n",
		est, 100*(est-truth)/truth)
	fmt.Printf("exact union:                  %8.0f\n", truth)
	fmt.Printf("total communication: %d bytes (exact dedup would ship ~%d bytes)\n",
		totalBytes, 8*naiveSum)
}
