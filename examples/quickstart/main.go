// Quickstart: estimate the number of distinct labels in the union of
// two streams, exchanging only one small message per party.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/unionstream"
)

func main() {
	// Both parties agree on options up front — the seed is the only
	// coordination the scheme needs.
	opts := unionstream.Options{Epsilon: 0.05, Delta: 0.01, Seed: 42}

	alice, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Alice sees labels 0..59999; Bob sees 40000..99999. They share
	// 20000 labels, so the union has exactly 100000 distinct labels.
	for x := uint64(0); x < 60_000; x++ {
		alice.Add(x)
		alice.Add(x) // duplicates never change the answer
	}
	for x := uint64(40_000); x < 100_000; x++ {
		bob.Add(x)
	}

	// Bob's entire communication is one sketch.
	msg, err := bob.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's message: %d bytes (vs %d bytes to ship his 60000 labels)\n",
		len(msg), 60_000*8)

	fromBob, err := unionstream.Decode(msg)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.Merge(fromBob); err != nil {
		log.Fatal(err)
	}

	est := alice.DistinctCount()
	fmt.Printf("estimated distinct labels in the union: %.0f (truth: 100000, error %+.2f%%)\n",
		est, 100*(est-100_000)/100_000)

	// The same merged sample answers predicate queries after the fact.
	even := alice.CountWhere(func(label uint64) bool { return label%2 == 0 })
	fmt.Printf("estimated distinct even labels:         %.0f (truth: 50000)\n", even)
}
