// Adtrack shows query-time predicate estimation on the coordinated
// sample: a fleet of web frontends each logs the users it served; the
// analyst later asks "how many distinct users did we reach?" — and
// then slices that by segments that were NOT known while the streams
// were being observed. Because the sketch retains a uniform
// coordinated sample of the distinct users, any label predicate can be
// evaluated at query time against the merged sample.
//
// Run with: go run ./examples/adtrack
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/unionstream"
)

const (
	numFrontends    = 6
	requestsPerNode = 300_000
	userPopulation  = 500_000
)

// userID layout (a realistic trick: pack attributes into the label so
// predicates can recover them): low 20 bits = user number, bits 20-21
// = region (0..3), bit 22 = premium flag.
func makeUser(n, region, premium int) uint64 {
	return uint64(n) | uint64(region)<<20 | uint64(premium)<<22
}

func region(label uint64) int   { return int(label >> 20 & 3) }
func premium(label uint64) bool { return label>>22&1 == 1 }

func main() {
	opts := unionstream.Options{Epsilon: 0.02, Delta: 0.01, Seed: 123}

	// Build the user base once; users stick to a home region and 25%
	// are premium. Requests are Zipf-ish: some users are much more
	// active, hitting many frontends — classic cross-stream overlap.
	rng := rand.New(rand.NewSource(77))
	users := make([]uint64, userPopulation)
	for i := range users {
		users[i] = makeUser(i%(1<<20), rng.Intn(4), boolInt(rng.Float64() < 0.25))
	}

	frontends := make([]*unionstream.Sketch, numFrontends)
	for i := range frontends {
		sk, err := unionstream.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		frontends[i] = sk
	}
	seen := make(map[uint64]bool)
	for f := 0; f < numFrontends; f++ {
		nodeRng := rand.New(rand.NewSource(int64(500 + f)))
		for r := 0; r < requestsPerNode; r++ {
			// Skew: squaring biases toward low indices (active users).
			idx := int(float64(userPopulation-1) * nodeRng.Float64() * nodeRng.Float64())
			u := users[idx]
			frontends[f].Add(u)
			seen[u] = true
		}
	}

	// Merge all frontends at the analytics service.
	merged := frontends[0]
	for _, sk := range frontends[1:] {
		msg, err := sk.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		dec, err := unionstream.Decode(msg)
		if err != nil {
			log.Fatal(err)
		}
		if err := merged.Merge(dec); err != nil {
			log.Fatal(err)
		}
	}

	// Exact answers for grading.
	exactTotal, exactPremium := 0, 0
	exactByRegion := make([]int, 4)
	for u := range seen {
		exactTotal++
		exactByRegion[region(u)]++
		if premium(u) {
			exactPremium++
		}
	}

	report := func(name string, est float64, truth int) {
		fmt.Printf("%-28s %9.0f   (exact %8d, %+.2f%%)\n",
			name, est, truth, 100*(est-float64(truth))/float64(truth))
	}
	fmt.Printf("distinct users reached, estimated from %d merged sketches:\n\n", numFrontends)
	report("all users", merged.DistinctCount(), exactTotal)
	report("premium users", merged.CountWhere(premium), exactPremium)
	for reg := 0; reg < 4; reg++ {
		reg := reg
		report(fmt.Sprintf("region %d", reg),
			merged.CountWhere(func(l uint64) bool { return region(l) == reg }),
			exactByRegion[reg])
	}
	fmt.Printf("\n(the region/premium splits were decided AFTER the streams ended —\n")
	fmt.Printf(" the sample answers any label predicate at query time)\n")
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
