// Sensoragg demonstrates duplicate-insensitive aggregation — the
// SumDistinct estimator — in the style of multi-path sensor networks
// (the application line that later built directly on this paper's
// sketch: Considine et al., ICDE 2004; Cormode–Tirthapura–Xu, PODC
// 2007).
//
// A field of sensors reports (sensorID, reading) pairs up a lossy
// multi-path network: to survive drops, every report is forwarded
// along several paths, so each of the three base stations receives an
// overlapping, duplicated subset of reports. The operator wants the
// SUM of readings over distinct sensors. Adding up what the stations
// received would count popular sensors many times; the coordinated
// sketch counts every sensor exactly once no matter how many copies
// arrived where.
//
// Run with: go run ./examples/sensoragg
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/unionstream"
)

const (
	numSensors  = 30_000
	numStations = 3
	pathCopies  = 2 // each report is sent along this many paths
)

func main() {
	opts := unionstream.Options{Epsilon: 0.04, Delta: 0.01, Seed: 99}

	// The ground truth: each sensor's reading is fixed for the epoch.
	rng := rand.New(rand.NewSource(2001))
	readings := make([]uint64, numSensors)
	var exactSum uint64
	for id := range readings {
		readings[id] = uint64(rng.Intn(100)) + 1 // reading in [1,100]
		exactSum += readings[id]
	}

	// Simulate multi-path flooding: every report goes to pathCopies
	// random stations (possibly the same one twice), and 2% of sensors
	// are lost entirely.
	stations := make([]*unionstream.Sketch, numStations)
	received := make([]int, numStations)
	var naiveSum uint64
	for s := range stations {
		sk, err := unionstream.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		stations[s] = sk
	}
	var lost int
	var lostSum uint64
	for id, reading := range readings {
		if rng.Float64() < 0.02 {
			lost++
			lostSum += reading
			continue // report dropped on every path
		}
		for c := 0; c < pathCopies; c++ {
			s := rng.Intn(numStations)
			stations[s].AddValued(uint64(id), reading)
			received[s]++
			naiveSum += reading // what "just add what you got" does
		}
	}

	// Stations send their sketches to the sink, which merges.
	sink, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	totalBytes := 0
	for s, sk := range stations {
		msg, err := sk.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += len(msg)
		decoded, err := unionstream.Decode(msg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.Merge(decoded); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("station %d: %6d reports received, sketch %6d bytes\n",
			s, received[s], len(msg))
	}

	truth := float64(exactSum - lostSum) // only delivered sensors can be counted
	est := sink.SumDistinct()
	fmt.Printf("\nnaive sum of received readings: %9d  (%+.1f%% — duplicates double-counted)\n",
		naiveSum, 100*(float64(naiveSum)-truth)/truth)
	fmt.Printf("duplicate-insensitive estimate: %9.0f  (%+.2f%%)\n",
		est, 100*(est-truth)/truth)
	fmt.Printf("exact sum over delivered sensors: %7.0f  (%d sensors lost to drops)\n", truth, lost)
	fmt.Printf("distinct reporting sensors (est): %7.0f\n", sink.DistinctCount())
	fmt.Printf("total communication: %d bytes\n", totalBytes)
}
