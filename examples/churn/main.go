// Churn demonstrates the set-operation extension of coordinated
// sketches: compare two days of traffic — sketched independently, on
// different machines, possibly weeks apart — and estimate returning
// users (intersection), churned users (difference), new users
// (reverse difference), and day-over-day similarity (Jaccard), all
// from two small sketches and without ever joining the raw logs.
//
// This is the capability that made the paper's coordinated-sampling
// idea the ancestor of today's theta sketches: any sketches built with
// the same seed remain comparable forever.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/unionstream"
)

const (
	population  = 400_000 // total user base
	activeDaily = 120_000 // distinct users active on a given day
	churnRate   = 0.30    // fraction of day-1 actives replaced on day 2
)

func sketchDay(opts unionstream.Options, actives []uint64, seed int64) (*unionstream.Sketch, map[uint64]bool) {
	sk, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	seen := make(map[uint64]bool, len(actives))
	rng := rand.New(rand.NewSource(seed))
	// Each active user generates a random number of events (1..20):
	// heavy duplication, as in real logs.
	for _, u := range actives {
		events := 1 + rng.Intn(20)
		for e := 0; e < events; e++ {
			sk.Add(u)
		}
		seen[u] = true
	}
	return sk, seen
}

func main() {
	opts := unionstream.Options{Epsilon: 0.02, Delta: 0.01, Seed: 2001}
	rng := rand.New(rand.NewSource(42))

	// Day 1: a random subset of the population is active.
	perm := rng.Perm(population)
	day1 := make([]uint64, activeDaily)
	for i := range day1 {
		day1[i] = uint64(perm[i])
	}
	// Day 2: keep (1-churnRate) of day 1, replace the rest with users
	// who were inactive on day 1.
	day2 := make([]uint64, 0, activeDaily)
	keep := int(float64(activeDaily) * (1 - churnRate))
	day2 = append(day2, day1[:keep]...)
	for i := 0; len(day2) < activeDaily; i++ {
		day2 = append(day2, uint64(perm[activeDaily+i]))
	}

	sk1, set1 := sketchDay(opts, day1, 101)
	sk2, set2 := sketchDay(opts, day2, 202)

	// Exact answers for grading.
	returning, churned, fresh := 0, 0, 0
	for u := range set1 {
		if set2[u] {
			returning++
		} else {
			churned++
		}
	}
	for u := range set2 {
		if !set1[u] {
			fresh++
		}
	}
	unionSize := len(set1) + fresh

	report := func(name string, est float64, truth int) {
		fmt.Printf("%-22s %9.0f   (exact %8d, %+.2f%%)\n",
			name, est, truth, 100*(est-float64(truth))/float64(truth))
	}

	inter, err := sk1.IntersectionCount(sk2)
	if err != nil {
		log.Fatal(err)
	}
	gone, err := sk1.DifferenceCount(sk2)
	if err != nil {
		log.Fatal(err)
	}
	arrived, err := sk2.DifferenceCount(sk1)
	if err != nil {
		log.Fatal(err)
	}
	jac, err := sk1.Jaccard(sk2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("day-over-day user analysis from two %d-byte sketches:\n\n", sk1.SizeBytes())
	report("active day 1", sk1.DistinctCount(), len(set1))
	report("active day 2", sk2.DistinctCount(), len(set2))
	report("returning (d1 ∩ d2)", inter, returning)
	report("churned (d1 \\ d2)", gone, churned)
	report("new (d2 \\ d1)", arrived, fresh)

	// Union via a merge of clones (merging mutates the receiver).
	u := sk1.Clone()
	if err := u.Merge(sk2); err != nil {
		log.Fatal(err)
	}
	report("either day (d1 ∪ d2)", u.DistinctCount(), unionSize)
	exactJ := float64(returning) / float64(unionSize)
	fmt.Printf("%-22s %9.3f   (exact %8.3f)\n", "jaccard similarity", jac, exactJ)
}
