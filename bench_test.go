// Package repro's root benchmarks regenerate every experiment table
// (one Benchmark per experiment E1–E10, see DESIGN.md) and measure the
// per-item micro-costs the paper's time claims are about. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the same code as cmd/gtbench in
// quick mode; the micro benchmarks isolate the hot paths.
package repro

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/hashing"
	"repro/internal/sketch/ams"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
	"repro/internal/window"
	"repro/unionstream"
)

// --- Micro benchmarks: per-item processing cost (the E5 quantities).

// benchLabels pre-generates labels so generator cost stays out of the
// measurement.
func benchLabels(n int) []uint64 {
	r := hashing.NewXoshiro256(42)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64n(uint64(n))
	}
	return out
}

func BenchmarkGTProcess(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := core.NewSampler(core.Config{Capacity: 1024, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkGTProcessJumpRaise(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := core.NewSampler(core.Config{Capacity: 1024, Seed: 1, Raise: core.RaiseJump})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkGTProcessEstimator5Copies(b *testing.B) {
	labels := benchLabels(1 << 20)
	e := core.NewEstimator(core.EstimatorConfig{Capacity: 1024, Copies: 5, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkFMProcess(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := fm.New(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkAMSProcess15Copies(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := ams.New(15, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkKMVProcess(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := kmv.New(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkBJKSTProcess(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := bjkst.New(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkHLLProcess(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := ll.New(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(labels[i&(1<<20-1)])
	}
}

func BenchmarkPairwiseHash(b *testing.B) {
	h := hashing.NewPairwise(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkTabulationHash(b *testing.B) {
	h := hashing.NewTabulation(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i))
	}
	_ = sink
}

// --- Serialization and merge costs (the communication path).

func builtSampler(capacity int) *core.Sampler {
	s := core.NewSampler(core.Config{Capacity: capacity, Seed: 3})
	for _, l := range benchLabels(1 << 17) {
		s.Process(l)
	}
	return s
}

func BenchmarkGTMarshal(b *testing.B) {
	s := builtSampler(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGTUnmarshal(b *testing.B) {
	enc, err := builtSampler(4096).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s core.Sampler
		if err := s.UnmarshalBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGTMerge(b *testing.B) {
	x := builtSampler(4096)
	y := core.NewSampler(x.Config())
	r := hashing.NewXoshiro256(9)
	for i := 0; i < 1<<17; i++ {
		y.Process(r.Uint64n(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		if err := c.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionstreamAdd(b *testing.B) {
	labels := benchLabels(1 << 20)
	s, err := unionstream.New(unionstream.Options{Epsilon: 0.05, Delta: 0.05, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(labels[i&(1<<20-1)])
	}
}

func BenchmarkWindowProcess(b *testing.B) {
	labels := benchLabels(1 << 20)
	s := window.New(window.Config{Capacity: 1024, Seed: 1, MaxLevel: 24})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Process(labels[i&(1<<20-1)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	s := window.New(window.Config{Capacity: 1024, Seed: 1, MaxLevel: 24})
	labels := benchLabels(1 << 18)
	for i, l := range labels {
		if err := s.Process(l, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EstimateDistinctSince(uint64(len(labels) - 10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGTProcessSliceParallel(b *testing.B) {
	labels := benchLabels(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewSampler(core.Config{Capacity: 1024, Seed: 1})
		s.ProcessSlice(labels, 0)
	}
	b.SetBytes(8 << 20)
}

func BenchmarkGTProcessSliceSerial(b *testing.B) {
	labels := benchLabels(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewSampler(core.Config{Capacity: 1024, Seed: 1})
		s.ProcessSlice(labels, 1)
	}
	b.SetBytes(8 << 20)
}

// --- Experiment benchmarks: one per table/figure in DESIGN.md. Each
// runs the full experiment (quick scale, small ensembles) once per
// iteration, so ns/op is the wall cost of regenerating that table.

func benchExperiment(b *testing.B, id string) {
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := harness.Config{Seed: 7, Quick: true, Trials: 3, Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1AccuracyAtEqualSpace(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2ErrorVsCapacity(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3UnionAcrossSites(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4SpaceVsEpsilon(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5PerItemTime(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6CommunicationCost(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7MedianBoosting(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8SumDistinct(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9PredicateSelectivity(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10HashFamilies(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11SlidingWindows(b *testing.B)      { benchExperiment(b, "E11") }
