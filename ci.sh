#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate, plus the race detector.
#
# The networked coordinator (internal/server) absorbs sketches from
# concurrent connections through a worker pool; every change must keep
# that path race-clean, so CI always runs the full suite under -race.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ci.sh: all checks passed"
