#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate, plus the race detector, the
# unionlint static-analysis suite, and a short fuzz smoke run.
#
# The networked coordinator (internal/server) absorbs sketches from
# concurrent connections through a worker pool; every change must keep
# that path race-clean, so CI always runs the full suite under -race.
# unionlint (cmd/unionlint, see README "Static analysis") enforces the
# invariants the compiler can't: coordinated seeding, documented mutex
# guards, the %w error contract at the wire boundary, float comparison
# hygiene, and — via cross-package facts — the registry/wire/
# determinism contracts (kindcheck, ackcontract, mergepure,
# failpointcheck), plus interprocedural hot-path allocation budgets
# (allocflow) cross-checked against testing.AllocsPerRun at runtime.
set -euo pipefail
cd "$(dirname "$0")"

# Pinned versions for the optional third-party analyzers. This CI runs
# offline: the tools are used when already present on PATH (or after
# CI_INSTALL_TOOLS=1 fetches them on a networked runner) and skipped
# otherwise, so the gate never depends on network access.
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2024.1.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"

echo "== go vet =="
go vet ./...

echo "== lockorder golden suite =="
# The deadlock analyzer's pinned scenarios (cross-package ordering
# cycle, self-deadlock, blocking-while-locked, lockorder:allow escape)
# plus the .vetx two-run fact round-trip run first and by name: the
# whole-module verdict below is only as good as these fixtures.
go test -count=1 ./internal/analysis/lockorder

echo "== allocflow golden suite =="
# The allocation-flow analyzer's pinned scenarios (transitive summary
# propagation, baseline gating, ceiling arithmetic) plus the vet-cache
# fact round-trip run first and by name: the whole-module budget
# verdict below is only as good as these fixtures.
go test -count=1 -run 'TestAllocflow|TestBaselineGating|TestCeiling' ./internal/analysis/allocflow
go test -count=1 -run 'TestAllocFlowFactsRoundTrip' ./internal/analysis/driver

echo "== unionlint self-test (golden suites) =="
# The linter's own analysistest suites run before the linter is trusted
# with the tree: a broken analyzer must fail loudly here, not silently
# under-report in the vettool pass below.
go test ./internal/analysis/...

echo "== unionlint =="
UNIONLINT="$(go env GOPATH)/bin/unionlint"
go build -o "$UNIONLINT" ./cmd/unionlint
# Run through `go vet -vettool` so test compilations are analyzed too
# and results cache per package. Diagnostics are captured and regrouped
# into a per-analyzer summary when the gate fails.
UNIONLINT_OUT="$(mktemp)"
trap 'rm -f "$UNIONLINT_OUT"' EXIT
if ! go vet -vettool="$UNIONLINT" ./... 2>"$UNIONLINT_OUT"; then
    cat "$UNIONLINT_OUT"
    echo
    "$UNIONLINT" -summarize <"$UNIONLINT_OUT"
    echo "ci.sh: unionlint found violations (fix them, annotate" \
         "'unionlint:allow <analyzer> <reason>', or run" \
         "'go run ./cmd/unionlint -fix ./...' for %w rewrites)."
    echo "ci.sh: fact-driven analyzers: kindcheck (registry tags/sentinels)," \
         "ackcontract (// ackclass: transient/permanent), mergepure" \
         "(// mergepure:seam for reviewed nondeterminism), failpointcheck" \
         "(declared failpoint sites), lockorder (deadlock/ordering/" \
         "blocking-while-locked over // guards: mutexes; reviewed waits" \
         "take // lockorder:allow <reason>), allocflow (// hotpath: roots" \
         "budgeted against lint/allocflow.baseline; license steady-state" \
         "growth with // allocflow:amortized <reason>, prune error paths" \
         "with // allocflow:cold <reason>); see README 'Static analysis'."
    exit 1
fi

echo "== allocflow baseline freshness (lint/allocflow.baseline) =="
# The committed baseline must match what the current tree generates:
# a budget change without a regenerated baseline is invisible to the
# vettool pass above (which gates against the committed file), so CI
# regenerates to a scratch path and diffs modulo the comment header.
ALLOCFLOW_TMP="$(mktemp)"
REPORT_TMP=""
trap 'rm -f "$UNIONLINT_OUT" "$ALLOCFLOW_TMP" "$REPORT_TMP"' EXIT
"$UNIONLINT" -allocflow.update -allocflow.baseline="$ALLOCFLOW_TMP" ./... >/dev/null
if ! diff -u <(grep -v '^#' lint/allocflow.baseline) <(grep -v '^#' "$ALLOCFLOW_TMP"); then
    echo "ci.sh: lint/allocflow.baseline is stale; regenerate with:" \
         "go run ./cmd/unionlint -allocflow.update ./..."
    exit 1
fi

echo "== unionlint JSONL report freshness (lint/report.jsonl) =="
# The full standalone run's machine-readable findings, tracked as a
# trend artifact: a clean tree commits an empty file, and any future
# findings show up in review as a diff of lint/report.jsonl. The
# vettool gate above already failed on violations, so this run is
# expected clean (-json exits 1 on findings, which still fails here),
# and the committed artifact must match the regeneration byte for byte.
REPORT_TMP="$(mktemp)"
"$UNIONLINT" -json ./... > "$REPORT_TMP"
if ! diff -u lint/report.jsonl "$REPORT_TMP"; then
    echo "ci.sh: lint/report.jsonl is stale; regenerate with:" \
         "go run ./cmd/unionlint -json ./... > lint/report.jsonl"
    exit 1
fi

echo "== staticcheck (optional, pinned $STATICCHECK_VERSION) =="
if [[ "${CI_INSTALL_TOOLS:-0}" == "1" ]] && ! command -v staticcheck >/dev/null; then
    go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"
fi
if command -v staticcheck >/dev/null; then
    staticcheck ./...
else
    echo "staticcheck not on PATH; skipping (set CI_INSTALL_TOOLS=1 on a networked runner)"
fi

echo "== govulncheck (optional, pinned $GOVULNCHECK_VERSION) =="
if [[ "${CI_INSTALL_TOOLS:-0}" == "1" ]] && ! command -v govulncheck >/dev/null; then
    go install "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"
fi
if command -v govulncheck >/dev/null; then
    govulncheck ./...
else
    echo "govulncheck not on PATH; skipping (set CI_INSTALL_TOOLS=1 on a networked runner)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== sketch conformance (all registered kinds, -race) =="
# The shared conformance suite (internal/sketch/sketchtest) run against
# every registered kind: envelope round-trips, byte-identical
# commutative/associative/idempotent merges, typed mismatch refusals.
# Already covered by the ./... run above, but named here so a failure
# in a newly registered kind is unmistakable in the CI log.
go test -race -run '^TestConformance$' -count=1 ./internal/sketch

echo "== hot-path allocation cross-check (allocflow ceilings vs AllocsPerRun, -race) =="
# The runtime anchor of the allocflow tentpole: every registered kind's
# Process/Merge/decode/absorb path plus the WAL append is driven under
# testing.AllocsPerRun and compared against the malloc ceiling its
# summaries license (internal/allocgate). Already part of the ./... run
# above, but named here so a budget breach is unmistakable in the log.
go test -race -run '^TestHotPathAllocSummaries$' -count=1 ./internal/allocgate

echo "== chaos suite (seeds 1..3) =="
# The deterministic fault-injection suites (internal/failpoint +
# internal/faultnet): every seeded fault schedule must leave the
# coordinator bit-identical to the fault-free serial run and reproduce
# the identical fault trace. Only these packages define -chaos.seed,
# so the sweep names them explicitly instead of using ./... .
CHAOS_PKGS=(./internal/server ./internal/client ./internal/distnet)
CHAOS_FAILED=()
for seed in 1 2 3; do
    echo "-- chaos.seed=$seed --"
    if ! go test -race -run 'Chaos' "${CHAOS_PKGS[@]}" -chaos.seed="$seed"; then
        CHAOS_FAILED+=("$seed")
    fi
done
if ((${#CHAOS_FAILED[@]})); then
    echo "ci.sh: chaos suite failed for seed(s): ${CHAOS_FAILED[*]}" \
         "(replay one with: go test -race -run Chaos <pkg> -chaos.seed=<seed>)"
    exit 1
fi

echo "== cluster convergence (3 shards -> parent, seeds 1..3, -race) =="
# The sharded-tier tentpole: three shards relaying into a parent must
# leave the parent bit-identical to a single coordinator that absorbed
# every site push directly — through seeded faults on both hops, and
# across shard death with ring migration. The fault-free 10^5-group
# run (TestClusterConvergesBitIdentical) is already part of the
# 'go test -race ./...' pass above; this gate names the chaos and
# shard-death legs per seed so a divergence is unmistakable.
CLUSTER_FAILED=()
for seed in 1 2 3; do
    echo "-- cluster chaos.seed=$seed --"
    if ! go test -race -run 'TestChaosClusterConvergesThroughFaultyHops|TestClusterShardDeathMigrationConverges' \
            ./internal/distnet -chaos.seed="$seed"; then
        CLUSTER_FAILED+=("$seed")
    fi
done
if ((${#CLUSTER_FAILED[@]})); then
    echo "ci.sh: cluster convergence failed for seed(s): ${CLUSTER_FAILED[*]}."
    echo "ci.sh: the ring and migration logic live in internal/cluster, the relay" \
         "flush in internal/server/relay.go, the batched/sharded push in" \
         "internal/client; replay one seed with:" \
         "go test -race -run Cluster ./internal/distnet -chaos.seed=<seed>"
    exit 1
fi

echo "== set-expression queries (3 named streams, 3 shards -> parent, seeds 1..3, -race) =="
# The set-expression acceptance leg: three named streams pushed across
# a 3-shard ring (placement varies with the seed), nested expression
# queries — (A∪B)∩C, A\B, Jaccard — routed shard- or parent-side, and
# every answer must be float64-identical to a local evaluation through
# internal/core's set operations, with the parent bit-identical to a
# single coordinator absorbing the same named pushes directly
# (internal/distnet/expr_test.go).
EXPR_FAILED=()
for seed in 1 2 3; do
    echo "-- expr chaos.seed=$seed --"
    if ! go test -race -run 'TestExprShardedCluster' \
            ./internal/distnet -chaos.seed="$seed"; then
        EXPR_FAILED+=("$seed")
    fi
done
if ((${#EXPR_FAILED[@]})); then
    echo "ci.sh: set-expression leg failed for seed(s): ${EXPR_FAILED[*]}."
    echo "ci.sh: the expression evaluator lives in internal/server/expr.go, the" \
         "QueryExpr routing in internal/client/sharded.go, the stream-carrying" \
         "relay in internal/server/relay.go; replay one seed with:" \
         "go test -race -run TestExprShardedCluster ./internal/distnet -chaos.seed=<seed>"
    exit 1
fi

echo "== WAL crash-recovery matrix (every wal/* failpoint + torn tail, seeds 1..3, -race) =="
# The durability tentpole: a coordinator killed at each wal/append,
# wal/fsync, wal/rotate, wal/snapshot, and wal/replay failpoint — plus
# a torn-tail crash — must reboot from its log and converge
# bit-identically to an uninterrupted control, in the single, relay,
# and 3-shard cluster topologies (internal/server/recovery_test.go and
# internal/distnet/recovery_test.go).
RECOVERY_FAILED=()
for seed in 1 2 3; do
    echo "-- recovery chaos.seed=$seed --"
    if ! go test -race -run 'TestWALRecovery|TestWALClusterParentCrashRecovery' \
            ./internal/server ./internal/distnet -chaos.seed="$seed"; then
        RECOVERY_FAILED+=("$seed")
    fi
done
if ((${#RECOVERY_FAILED[@]})); then
    echo "ci.sh: WAL recovery matrix failed for seed(s): ${RECOVERY_FAILED[*]}."
    echo "ci.sh: the log lives in internal/wal, the server wiring (log-before-ack," \
         "seal barrier, replay-before-accept) in internal/server/wal.go; replay one" \
         "seed with: go test -race -run TestWALRecovery ./internal/server -chaos.seed=<seed>"
    exit 1
fi

# BENCH_absorb.json (repo root) is the checked-in coordinator-path
# microbenchmark snapshot (absorb ns/op and MB/s, merge, envelope
# decode, per kind, plus allocs_licensed/allocs_budget_ok comparing
# observed absorb allocations to the allocflow ceiling). It is not
# gated here — timings are machine-dependent, and the allocation gate
# already runs above via internal/allocgate — regenerate it on a quiet
# machine with:
#   go run ./cmd/gtbench -bench BENCH_absorb.json
# BENCH_wal.json is the same kind of snapshot for the durability layer
# (append ns/op with and without fsync, replay MB/s):
#   go run ./cmd/gtbench -bench-wal BENCH_wal.json
# BENCH_expr.json snapshots the set-expression evaluator (AnswerExpr
# ns/query per expression shape):
#   go run ./cmd/gtbench -bench-expr BENCH_expr.json

echo "== fuzz smoke: FuzzWireDecode (10s) =="
# A short bounded run of the wire-format fuzzer: enough to catch a
# decoder regression on every CI pass without turning the gate into a
# fuzzing campaign.
go test -run='^$' -fuzz='^FuzzWireDecode$' -fuzztime=10s ./internal/wire

echo "== fuzz smoke: FuzzClientReadFrame (10s) =="
# Same budget for the client's reply reader, which replays the wire
# fuzzer's shared corpus and must agree with it frame for frame.
go test -run='^$' -fuzz='^FuzzClientReadFrame$' -fuzztime=10s ./internal/client

echo "== fuzz smoke: FuzzSketchOpen (10s) =="
# And for the registry envelope opener, which fronts every decoder in
# the sketch registry: no input may panic it, and every accepted input
# must re-encode to an identical envelope header.
go test -run='^$' -fuzz='^FuzzSketchOpen$' -fuzztime=10s ./internal/sketch

echo "== fuzz smoke: FuzzWALReplay (10s) =="
# And for the WAL segment decoder and Open/Replay recovery path, which
# replays the wire fuzzer's shared corpus plus torn and bit-flipped
# segments: no bytes on disk may panic a boot, damage must classify as
# ErrDamaged at a deterministic clean offset, and the truncated log
# must accept appends afterwards.
go test -run='^$' -fuzz='^FuzzWALReplay$' -fuzztime=10s ./internal/wal

echo "ci.sh: all checks passed"
