// Command unioncount estimates simple functions on the union of one
// or more stream files: each file plays the role of one distributed
// party's stream; the tool sketches each independently (with the
// shared seed, as the paper's parties would), merges the sketches, and
// reports the union estimates next to the exact answers and the
// communication cost.
//
// Usage:
//
//	unioncount [-eps 0.05] [-delta 0.01] [-seed N] [-exact] stream1.gts stream2.gts ...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exact"
	"repro/internal/stream"
	"repro/unionstream"
)

func main() {
	var (
		eps       = flag.Float64("eps", 0.05, "target relative error")
		delta     = flag.Float64("delta", 0.01, "target failure probability")
		seed      = flag.Uint64("seed", 42, "shared coordination seed")
		showExact = flag.Bool("exact", true, "also compute exact answers for comparison")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "unioncount: need at least one stream file")
		os.Exit(2)
	}

	opts := unionstream.Options{Epsilon: *eps, Delta: *delta, Seed: *seed}
	var merged *unionstream.Sketch
	truth := exact.NewDistinct()
	totalBytes := 0

	for _, path := range files {
		src, err := stream.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unioncount: %s: %v\n", path, err)
			os.Exit(1)
		}
		sk, err := unionstream.New(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unioncount:", err)
			os.Exit(1)
		}
		n := 0
		stream.Feed(src, func(it stream.Item) {
			sk.AddValued(it.Label, it.Value)
			if *showExact {
				truth.ProcessWeighted(it.Label, it.Value)
			}
			n++
		})
		// Simulate the one-shot message: the same self-describing
		// envelope a site pushes to unionstreamd — serialize, count
		// bytes, decode at the "coordinator".
		msg, err := sk.Envelope()
		if err != nil {
			fmt.Fprintln(os.Stderr, "unioncount:", err)
			os.Exit(1)
		}
		totalBytes += len(msg)
		decoded, err := unionstream.DecodeEnvelope(msg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unioncount:", err)
			os.Exit(1)
		}
		if merged == nil {
			merged = decoded
		} else if err := merged.Merge(decoded); err != nil {
			fmt.Fprintln(os.Stderr, "unioncount:", err)
			os.Exit(1)
		}
		fmt.Printf("site %-24s %8d items, sketch %6d bytes\n", path, n, len(msg))
	}

	fmt.Printf("\nunion distinct estimate: %.0f\n", merged.DistinctCount())
	fmt.Printf("union sum estimate:      %.0f\n", merged.SumDistinct())
	fmt.Printf("total communication:     %d bytes (%d sites)\n", totalBytes, len(files))
	if *showExact {
		fmt.Printf("exact distinct:          %d\n", truth.Count())
		fmt.Printf("exact sum:               %d\n", truth.Sum())
		if truth.Count() > 0 {
			rel := (merged.DistinctCount() - float64(truth.Count())) / float64(truth.Count())
			fmt.Printf("distinct signed error:   %+.4f\n", rel)
		}
	}
}
