// Command unionstreamd runs the paper's referee as a network daemon:
// a coordinator that accepts one-shot sketch envelopes of any
// registered kind from distributed sites over TCP, merges them into
// per-(kind, configuration) groups, and answers union queries
// (distinct count, duplicate-insensitive sum, predicate counts) plus
// a JSON /statsz introspection endpoint.
//
// Usage:
//
//	unionstreamd [-addr :7600] [-statsz :7601] [-workers N]
//	             [-require-seed N] [-require-kind gt]
//	             [-max-frame BYTES] [-quiet]
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight messages
// finish absorbing and are acked before the process exits. Push
// sketches at it with cmd/unionpush and query with the same tool.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"

	// Register every sketch kind the daemon can absorb.
	_ "repro/internal/sketch/kinds"
)

func main() {
	var (
		addr        = flag.String("addr", ":7600", "TCP listen address for the sketch protocol")
		statsz      = flag.String("statsz", "", "HTTP listen address for /statsz (empty = disabled)")
		workers     = flag.Int("workers", 0, "absorb worker pool size (0 = GOMAXPROCS)")
		maxFrame    = flag.Uint("max-frame", 0, "maximum accepted frame payload in bytes (0 = 16 MiB)")
		requireSeed = flag.Uint64("require-seed", 0, "reject sketches whose coordination seed differs (with -pin-seed)")
		pinSeed     = flag.Bool("pin-seed", false, "enforce -require-seed (otherwise any seed forms its own group)")
		requireKind = flag.String("require-kind", "", "reject sketches of any other kind (empty = accept all registered kinds)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		quiet       = flag.Bool("quiet", false, "suppress per-event logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "unionstreamd: unexpected arguments", flag.Args())
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	cfg := server.Config{
		Addr:        *addr,
		Workers:     *workers,
		MaxPayload:  uint32(*maxFrame),
		RequireKind: *requireKind,
		Logf:        logf,
	}
	if *pinSeed {
		cfg.RequireSeed = requireSeed
	}
	srv := server.New(cfg)

	if *statsz != "" {
		mux := http.NewServeMux()
		mux.Handle("/statsz", srv.StatszHandler())
		hs := &http.Server{Addr: *statsz, Handler: mux}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("unionstreamd: statsz: %v", err)
			}
		}()
		defer hs.Close()
		if !*quiet {
			log.Printf("unionstreamd: statsz on http://%s/statsz", *statsz)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("unionstreamd: %v", err)
		}
	case <-ctx.Done():
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("unionstreamd: drain incomplete: %v", err)
			os.Exit(1)
		}
		<-serveErr
	}
}
