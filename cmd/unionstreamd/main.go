// Command unionstreamd runs the paper's referee as a network daemon:
// a coordinator that accepts one-shot sketch envelopes of any
// registered kind from distributed sites over TCP, merges them into
// per-(kind, configuration) groups, and answers union queries
// (distinct count, duplicate-insensitive sum, predicate counts) plus
// a JSON /statsz introspection endpoint.
//
// Usage:
//
//	unionstreamd [-addr :7600] [-statsz :7601] [-workers N]
//	             [-require-seed N] [-require-kind gt]
//	             [-max-frame BYTES] [-quiet]
//	             [-relay-to host:7600] [-relay-interval 1s] [-relay-after N]
//	             [-shard I -shards N] [-ring-seed 42]
//	             [-wal-dir DIR] [-wal-fsync always|never]
//	             [-wal-segment-bytes N] [-snapshot-every 1m]
//
// With -relay-to the daemon is a mid-tier shard: it keeps absorbing
// site pushes, and every -relay-interval (or as soon as any group
// accumulates -relay-after absorbs) it pushes each dirty merge
// group's merged envelope to the parent coordinator as an ordinary
// site push. -shard/-shards/-ring-seed declare the daemon's position
// on the cluster's consistent-hash ring, surfaced per group in
// /statsz so a misrouting fleet is visible. See README "Running a
// cluster".
//
// With -wal-dir the daemon is durable: every accepted envelope is
// appended to a segmented write-ahead log before it is acked, the
// merged group state is snapshotted every -snapshot-every (truncating
// the replayed prefix of the log), and a rebooted daemon replays
// snapshot plus log before its listener accepts — so a crash between
// ack and snapshot loses nothing. -wal-fsync never trades the
// per-record fsync for speed at the cost of the OS page-cache window.
// See README "Durability".
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight messages
// finish absorbing and are acked — and a relay pushes everything
// still dirty upstream — before the process exits. Push sketches at
// it with cmd/unionpush and query with the same tool.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wal"

	// Register every sketch kind the daemon can absorb.
	_ "repro/internal/sketch/kinds"
)

func main() {
	var (
		addr        = flag.String("addr", ":7600", "TCP listen address for the sketch protocol")
		statsz      = flag.String("statsz", "", "HTTP listen address for /statsz (empty = disabled)")
		workers     = flag.Int("workers", 0, "absorb worker pool size (0 = GOMAXPROCS)")
		maxFrame    = flag.Uint("max-frame", 0, "maximum accepted frame payload in bytes (0 = 16 MiB)")
		requireSeed = flag.Uint64("require-seed", 0, "reject sketches whose coordination seed differs (with -pin-seed)")
		pinSeed     = flag.Bool("pin-seed", false, "enforce -require-seed (otherwise any seed forms its own group)")
		requireKind = flag.String("require-kind", "", "reject sketches of any other kind (empty = accept all registered kinds)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		quiet       = flag.Bool("quiet", false, "suppress per-event logging")

		relayTo       = flag.String("relay-to", "", "parent coordinator address to relay merged groups to (enables relay mode)")
		relayInterval = flag.Duration("relay-interval", time.Second, "relay flush period (with -relay-to)")
		relayAfter    = flag.Int64("relay-after", 0, "also flush once any group accumulates this many absorbs (0 = timer only)")
		shard         = flag.Int("shard", 0, "this coordinator's shard index on the cluster ring (with -shards)")
		shards        = flag.Int("shards", 0, "total shard count on the cluster ring (0 = not clustered)")
		ringSeed      = flag.Uint64("ring-seed", 42, "consistent-hash ring seed shared by shards and pushers (with -shards)")

		walDir      = flag.String("wal-dir", "", "write-ahead-log directory for crash durability (empty = not durable)")
		walFsync    = flag.String("wal-fsync", "always", "WAL fsync policy: always (fsync per record) or never (with -wal-dir)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this many bytes (0 = 4 MiB)")
		snapEvery   = flag.Duration("snapshot-every", time.Minute, "merged-state snapshot period; snapshots truncate the replayed WAL (with -wal-dir)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "unionstreamd: unexpected arguments", flag.Args())
		os.Exit(2)
	}
	if *shards > 0 && (*shard < 0 || *shard >= *shards) {
		fmt.Fprintf(os.Stderr, "unionstreamd: -shard %d outside [0,%d)\n", *shard, *shards)
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	cfg := server.Config{
		Addr:        *addr,
		Workers:     *workers,
		MaxPayload:  uint32(*maxFrame),
		RequireKind: *requireKind,
		Logf:        logf,
	}
	if *pinSeed {
		cfg.RequireSeed = requireSeed
	}
	if *relayTo != "" {
		cfg.Relay = &server.RelayConfig{
			Upstream:      *relayTo,
			FlushInterval: *relayInterval,
			FlushAfter:    *relayAfter,
		}
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unionstreamd: %v\n", err)
			os.Exit(2)
		}
		cfg.WAL = &server.WALConfig{
			Dir:           *walDir,
			SegmentBytes:  *walSegBytes,
			Sync:          policy,
			SnapshotEvery: *snapEvery,
		}
	}
	if *shards > 0 {
		ring := cluster.NewRing(*shards, 0, *ringSeed)
		cfg.Cluster = &server.ClusterInfo{
			Shard:    *shard,
			Shards:   *shards,
			RingSeed: *ringSeed,
			Owner:    ring.OwnerOfGroup,
		}
	}
	srv := server.New(cfg)

	if *statsz != "" {
		mux := http.NewServeMux()
		mux.Handle("/statsz", srv.StatszHandler())
		hs := &http.Server{Addr: *statsz, Handler: mux}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("unionstreamd: statsz: %v", err)
			}
		}()
		defer hs.Close()
		if !*quiet {
			log.Printf("unionstreamd: statsz on http://%s/statsz", *statsz)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("unionstreamd: %v", err)
		}
	case <-ctx.Done():
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("unionstreamd: drain incomplete: %v", err)
			os.Exit(1)
		}
		<-serveErr
	}
}
