package main

// The -bench mode: coordinator-path microbenchmarks (server absorb,
// raw sketch merge, envelope decode) per registered kind, written as
// a JSON report. The checked-in snapshot lives at BENCH_absorb.json
// in the repository root; regenerate it on a quiet machine with:
//
//	go run ./cmd/gtbench -bench BENCH_absorb.json

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/analysis/allocbudget"
	"repro/internal/hashing"
	"repro/internal/server"
	"repro/internal/sketch"

	// Register every kind so the sweep covers the whole registry.
	_ "repro/internal/sketch/kinds"
)

// benchKindResult is one kind's row in the report.
type benchKindResult struct {
	Kind          string  `json:"kind"`
	EnvelopeBytes int     `json:"envelope_bytes"`
	AbsorbNsPerOp float64 `json:"absorb_ns_per_op"`
	AbsorbMBPerS  float64 `json:"absorb_mb_per_s"`
	AbsorbAllocs  float64 `json:"absorb_allocs_per_op"`
	MergeNsPerOp  float64 `json:"merge_ns_per_op"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op"`
	// AllocsLicensed is the absorb path's malloc ceiling from the
	// allocflow summaries (internal/analysis/allocbudget), -1 when the
	// path is statically unbounded (window: merge rebuilds per-level
	// samples). AllocsBudgetOK reports observed ≤ licensed.
	AllocsLicensed int  `json:"allocs_licensed"`
	AllocsBudgetOK bool `json:"allocs_budget_ok"`
}

// benchReport is the BENCH_absorb.json layout.
type benchReport struct {
	Tool   string            `json:"tool"`
	Note   string            `json:"note"`
	Go     string            `json:"go"`
	GOOS   string            `json:"goos"`
	GOARCH string            `json:"goarch"`
	Kinds  []benchKindResult `json:"kinds"`
}

// benchSiteEnvelopes builds nsites populated site envelopes of one
// kind, all in one merge group (the server bench's fixture, rebuilt
// here for the CLI).
func benchSiteEnvelopes(info sketch.KindInfo, nsites int) ([][]byte, error) {
	msgs := make([][]byte, nsites)
	for i := range msgs {
		sk := info.New(0.1, 1)
		r := hashing.NewXoshiro256(uint64(100 + i))
		for j := 0; j < 4096; j++ {
			sk.Process(r.Uint64n(1 << 20))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", info.Name, err)
		}
		msgs[i] = env
	}
	return msgs, nil
}

// runBench measures every registered kind and writes the JSON report
// to path ("-" = stdout).
func runBench(path string) error {
	report := benchReport{
		Tool:   "gtbench -bench",
		Note:   "coordinator absorb path, raw sketch merge, and envelope decode per registered kind; allocs_licensed is the allocflow absorb ceiling (-1 = statically unbounded) and allocs_budget_ok reports observed <= licensed; regenerate with: go run ./cmd/gtbench -bench BENCH_absorb.json",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	// Harvest the allocflow summaries once so every kind's absorb
	// figure is judged against its licensed malloc ceiling.
	budgets, err := allocbudget.Load(".",
		"./internal/server", "./internal/sketch/...", "./internal/core",
		"./internal/exact", "./internal/window")
	if err != nil {
		return fmt.Errorf("harvesting allocflow summaries: %w", err)
	}
	for _, info := range sketch.Kinds() {
		msgs, err := benchSiteEnvelopes(info, 8)
		if err != nil {
			return err
		}
		sks := make([]sketch.Sketch, len(msgs))
		for i, m := range msgs {
			if sks[i], err = sketch.Open(m); err != nil {
				return fmt.Errorf("%s: %w", info.Name, err)
			}
		}

		absorb := testing.Benchmark(func(b *testing.B) {
			srv := server.New(server.Config{})
			b.SetBytes(int64(len(msgs[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := srv.Absorb(msgs[i%len(msgs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		merge := testing.Benchmark(func(b *testing.B) {
			dst := info.New(0.1, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dst.Merge(sks[i%len(sks)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		decode := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sketch.Open(msgs[i%len(msgs)]); err != nil {
					b.Fatal(err)
				}
			}
		})

		row := benchKindResult{
			Kind:          info.Name,
			EnvelopeBytes: len(msgs[0]),
			AbsorbNsPerOp: float64(absorb.NsPerOp()),
			AbsorbAllocs:  float64(absorb.AllocsPerOp()),
			MergeNsPerOp:  float64(merge.NsPerOp()),
			DecodeNsPerOp: float64(decode.NsPerOp()),
		}
		row.AllocsLicensed = -1
		if p, ok := allocbudget.AbsorbPath(info.Name); ok {
			if res := budgets.Eval(p); res.Bounded {
				row.AllocsLicensed = res.Ceiling
				row.AllocsBudgetOK = row.AbsorbAllocs <= float64(res.Ceiling)
			}
		}
		if secs := absorb.T.Seconds(); secs > 0 {
			row.AbsorbMBPerS = float64(absorb.Bytes) * float64(absorb.N) / 1e6 / secs
		}
		report.Kinds = append(report.Kinds, row)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
