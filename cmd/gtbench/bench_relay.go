package main

// The -bench-relay mode: microbenchmarks for the sharded tier's two
// hot paths — a relay coordinator's FlushRelay round (snapshot every
// dirty group, push the batch upstream over loopback TCP) and the
// client's batched PushBatch (one dial amortized over N envelopes).
// The checked-in snapshot lives at BENCH_relay.json in the repository
// root; regenerate it on a quiet machine with:
//
//	go run ./cmd/gtbench -bench-relay BENCH_relay.json

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
)

// relayBenchReport is the BENCH_relay.json layout.
type relayBenchReport struct {
	Tool       string           `json:"tool"`
	Note       string           `json:"note"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	RelayFlush relayFlushResult `json:"relay_flush"`
	PushBatch  pushBatchResult  `json:"push_batch"`
}

// relayFlushResult measures one FlushRelay round over a fixed number
// of dirty groups.
type relayFlushResult struct {
	Groups     int     `json:"groups"`
	NsPerFlush float64 `json:"flush_ns_per_op"`
	NsPerGroup float64 `json:"flush_ns_per_group"`
}

// pushBatchResult measures one PushBatch of a fixed envelope set.
type pushBatchResult struct {
	Envelopes     int     `json:"envelopes"`
	EnvelopeBytes int     `json:"envelope_bytes"`
	NsPerBatch    float64 `json:"batch_ns_per_op"`
	NsPerEnvelope float64 `json:"ns_per_envelope"`
	MBPerS        float64 `json:"mb_per_s"`
}

// relayBenchEnvelopes builds n envelopes in n distinct kmv merge
// groups (distinct coordination seeds → distinct config digests),
// mirroring the relay suite's fixture.
func relayBenchEnvelopes(n int) ([][]byte, error) {
	envs := make([][]byte, n)
	for i := range envs {
		sk := kmv.New(64, uint64(9000+i))
		for x := uint64(0); x < 4096; x++ {
			sk.Process(x*11 + uint64(i))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			return nil, err
		}
		envs[i] = env
	}
	return envs, nil
}

// runBenchRelay measures the relay flush and batched push paths and
// writes the JSON report to path ("-" = stdout).
func runBenchRelay(path string) error {
	const groups = 16
	envs, err := relayBenchEnvelopes(groups)
	if err != nil {
		return err
	}

	// A real parent over loopback TCP: both paths under test end in
	// its accept loop, like a production shard's upstream.
	parent := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- parent.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		parent.Shutdown(ctx)
		<-serveErr
	}()
	parentAddr := ln.Addr().String()

	child := server.New(server.Config{Relay: &server.RelayConfig{
		Upstream:      parentAddr,
		FlushInterval: time.Hour, // parked: the benchmark drives flushes
		Attempts:      3,
		BackoffBase:   5 * time.Millisecond,
		JitterSeed:    1,
	}})

	var benchErr error
	flush := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range envs {
				if err := child.Absorb(e); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
			b.StartTimer()
			n, err := child.FlushRelay()
			b.StopTimer()
			if err != nil || n != groups {
				benchErr = fmt.Errorf("flush delivered %d of %d groups: %w", n, groups, err)
				b.Fatal(benchErr)
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}

	cl := client.New(client.Config{
		Addr:        parentAddr,
		Attempts:    3,
		BackoffBase: 5 * time.Millisecond,
		JitterSeed:  1,
	})
	var batchBytes int64
	for _, e := range envs {
		batchBytes += int64(len(e))
	}
	push := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(batchBytes)
		for i := 0; i < b.N; i++ {
			n, err := cl.PushBatch(envs)
			if err != nil || n != len(envs) {
				benchErr = fmt.Errorf("push batch delivered %d of %d envelopes: %w", n, len(envs), err)
				b.Fatal(benchErr)
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}

	report := relayBenchReport{
		Tool:   "gtbench -bench-relay",
		Note:   "relay FlushRelay round (snapshot + batched upstream push over loopback TCP) and client.PushBatch; regenerate with: go run ./cmd/gtbench -bench-relay BENCH_relay.json",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		RelayFlush: relayFlushResult{
			Groups:     groups,
			NsPerFlush: float64(flush.NsPerOp()),
			NsPerGroup: float64(flush.NsPerOp()) / groups,
		},
		PushBatch: pushBatchResult{
			Envelopes:     len(envs),
			EnvelopeBytes: len(envs[0]),
			NsPerBatch:    float64(push.NsPerOp()),
			NsPerEnvelope: float64(push.NsPerOp()) / float64(len(envs)),
		},
	}
	if secs := push.T.Seconds(); secs > 0 {
		report.PushBatch.MBPerS = float64(push.Bytes) * float64(push.N) / 1e6 / secs
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
