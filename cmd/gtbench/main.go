// Command gtbench runs the reproduction experiments (E1–E10 in
// DESIGN.md) and prints their result tables.
//
// Usage:
//
//	gtbench [-e E1,E3] [-seed N] [-trials N] [-quick] [-csv DIR] [-list]
//	gtbench -bench BENCH_absorb.json
//	gtbench -bench-relay BENCH_relay.json
//	gtbench -bench-wal BENCH_wal.json
//	gtbench -bench-expr BENCH_expr.json
//
// With no -e flag every experiment runs, in order. -csv additionally
// writes each table as a CSV file into DIR for plotting. -bench skips
// the experiments and instead runs the coordinator-path
// microbenchmarks (server absorb ns/op and MB/s, raw sketch merge,
// envelope decode, per registered kind), writing a JSON report — the
// checked-in snapshot lives at BENCH_absorb.json in the repo root.
// -bench-relay does the same for the sharded tier's hot paths (relay
// FlushRelay rounds and client.PushBatch over loopback TCP), writing
// the BENCH_relay.json snapshot. -bench-wal prices the durability
// layer (envelope Append with and without per-record fsync, full-log
// Open+Replay throughput), writing the BENCH_wal.json snapshot.
// -bench-expr prices the set-expression query evaluator (AnswerExpr
// per expression shape — leaf, union, nested intersection/difference,
// deep union spine, Jaccard), writing the BENCH_expr.json snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		experiments = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		seed        = flag.Uint64("seed", 20010621, "master seed (default: the SPAA 2001 conference date)")
		trials      = flag.Int("trials", 0, "override per-experiment trial counts")
		quick       = flag.Bool("quick", false, "shrink workloads ~10x for a fast pass")
		csvDir      = flag.String("csv", "", "directory to write per-table CSV files")
		list        = flag.Bool("list", false, "list experiments and exit")
		bench       = flag.String("bench", "", "run the absorb/merge/decode microbenchmarks and write JSON to FILE ('-' = stdout)")
		benchRelay  = flag.String("bench-relay", "", "run the relay-flush/PushBatch microbenchmarks and write JSON to FILE ('-' = stdout)")
		benchWAL    = flag.String("bench-wal", "", "run the WAL append/replay microbenchmarks and write JSON to FILE ('-' = stdout)")
		benchExpr   = flag.String("bench-expr", "", "run the set-expression evaluator microbenchmarks and write JSON to FILE ('-' = stdout)")
	)
	flag.Parse()

	if *bench != "" {
		if err := runBench(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchRelay != "" {
		if err := runBenchRelay(*benchRelay); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchWAL != "" {
		if err := runBenchWAL(*benchWAL); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchExpr != "" {
		if err := runBenchExpr(*benchExpr); err != nil {
			fmt.Fprintln(os.Stderr, "gtbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var ids []string
	if *experiments != "" {
		for _, id := range strings.Split(*experiments, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	cfg := harness.Config{
		Seed:   *seed,
		Trials: *trials,
		Quick:  *quick,
		Out:    os.Stdout,
	}
	if err := harness.RunAndPrint(cfg, ids, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "gtbench:", err)
		os.Exit(1)
	}
}
