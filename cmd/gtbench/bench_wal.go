package main

// The -bench-wal mode: microbenchmarks for the durability layer's two
// costs — the per-envelope Append (with and without the per-record
// fsync the default SyncAlways policy pays, so the report prices the
// fsync itself) and boot-time Replay throughput over a sealed log.
// The checked-in snapshot lives at BENCH_wal.json in the repository
// root; regenerate it on a quiet machine with:
//
//	go run ./cmd/gtbench -bench-wal BENCH_wal.json

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
	"repro/internal/wal"
)

// walBenchReport is the BENCH_wal.json layout.
type walBenchReport struct {
	Tool        string          `json:"tool"`
	Note        string          `json:"note"`
	Go          string          `json:"go"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	AppendFsync walAppendResult `json:"append_fsync"`
	AppendAsync walAppendResult `json:"append_nosync"`
	Replay      walReplayResult `json:"replay"`
}

// walAppendResult measures Append of one fixed envelope under a sync
// policy.
type walAppendResult struct {
	EnvelopeBytes int     `json:"envelope_bytes"`
	NsPerAppend   float64 `json:"append_ns_per_op"`
	MBPerS        float64 `json:"mb_per_s"`
}

// walReplayResult measures a full Open+Replay of a sealed log.
type walReplayResult struct {
	Records     int     `json:"records"`
	LogBytes    int64   `json:"log_bytes"`
	NsPerReplay float64 `json:"replay_ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
}

// walBenchEnvelope builds the fixture record: a populated kmv
// envelope, the same shape the coordinator logs per accepted push.
func walBenchEnvelope() ([]byte, error) {
	sk := kmv.New(64, 9000)
	for x := uint64(0); x < 4096; x++ {
		sk.Process(x*11 + 7)
	}
	return sketch.Envelope(sk)
}

// benchAppend prices Append under one sync policy.
func benchAppend(env []byte, policy wal.SyncPolicy) (walAppendResult, error) {
	dir, err := os.MkdirTemp("", "walbench")
	if err != nil {
		return walAppendResult{}, err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: policy})
	if err != nil {
		return walAppendResult{}, err
	}
	defer l.Close()
	if _, err := l.Replay(func(string, []byte) error { return nil }); err != nil {
		return walAppendResult{}, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(env)))
		for i := 0; i < b.N; i++ {
			if err := l.Append(env); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return walAppendResult{}, benchErr
	}
	res := walAppendResult{
		EnvelopeBytes: len(env),
		NsPerAppend:   float64(r.NsPerOp()),
	}
	if secs := r.T.Seconds(); secs > 0 {
		res.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / secs
	}
	return res, nil
}

// benchReplay seals a log of records copies of env and prices a full
// Open+Replay of it.
func benchReplay(env []byte, records int) (walReplayResult, error) {
	dir, err := os.MkdirTemp("", "walbench")
	if err != nil {
		return walReplayResult{}, err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		return walReplayResult{}, err
	}
	if _, err := l.Replay(func(string, []byte) error { return nil }); err != nil {
		return walReplayResult{}, err
	}
	for i := 0; i < records; i++ {
		if err := l.Append(env); err != nil {
			return walReplayResult{}, err
		}
	}
	if err := l.Close(); err != nil {
		return walReplayResult{}, err
	}

	var benchErr error
	var logBytes int64
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rl, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				benchErr = err
				b.Fatal(err)
			}
			st, err := rl.Replay(func(string, []byte) error { return nil })
			if cerr := rl.Close(); err == nil {
				err = cerr
			}
			if err != nil || st.Records != int64(records) {
				benchErr = fmt.Errorf("replayed %d of %d records: %w", st.Records, records, err)
				b.Fatal(benchErr)
			}
			logBytes = st.Bytes
			b.SetBytes(st.Bytes)
		}
	})
	if benchErr != nil {
		return walReplayResult{}, benchErr
	}
	res := walReplayResult{
		Records:     records,
		LogBytes:    logBytes,
		NsPerReplay: float64(r.NsPerOp()),
	}
	if secs := r.T.Seconds(); secs > 0 {
		res.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / secs
	}
	return res, nil
}

// runBenchWAL measures the append and replay paths and writes the
// JSON report to path ("-" = stdout).
func runBenchWAL(path string) error {
	env, err := walBenchEnvelope()
	if err != nil {
		return err
	}
	report := walBenchReport{
		Tool:   "gtbench -bench-wal",
		Note:   "envelope Append under SyncAlways/SyncNever and full-log Open+Replay throughput; regenerate with: go run ./cmd/gtbench -bench-wal BENCH_wal.json",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	if report.AppendFsync, err = benchAppend(env, wal.SyncAlways); err != nil {
		return err
	}
	if report.AppendAsync, err = benchAppend(env, wal.SyncNever); err != nil {
		return err
	}
	if report.Replay, err = benchReplay(env, 4096); err != nil {
		return err
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
