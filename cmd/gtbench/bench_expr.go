package main

// The -bench-expr mode: microbenchmarks for the set-expression query
// evaluator — the in-process AnswerExpr path a MsgQueryExpr frame
// triggers. Each shape prices one evaluator behavior: the leaf
// clone-and-estimate baseline, the merge-backed union, the
// SetCombiner-backed nested intersection, a deep union spine, and the
// scalar Jaccard root. The checked-in snapshot lives at
// BENCH_expr.json in the repository root; regenerate it on a quiet
// machine with:
//
//	go run ./cmd/gtbench -bench-expr BENCH_expr.json

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/wire"
)

// exprBenchReport is the BENCH_expr.json layout.
type exprBenchReport struct {
	Tool    string            `json:"tool"`
	Note    string            `json:"note"`
	Go      string            `json:"go"`
	GOOS    string            `json:"goos"`
	GOARCH  string            `json:"goarch"`
	Sketch  exprBenchSketch   `json:"sketch"`
	Queries []exprBenchResult `json:"queries"`
}

// exprBenchSketch records the fixture configuration the timings
// depend on.
type exprBenchSketch struct {
	Kind     string `json:"kind"`
	Capacity int    `json:"capacity"`
	Copies   int    `json:"copies"`
	Streams  int    `json:"streams"`
	Distinct int    `json:"distinct_per_stream"`
}

// exprBenchResult is one expression shape's price.
type exprBenchResult struct {
	Name        string  `json:"name"`
	Expr        string  `json:"expr"`
	Nodes       int     `json:"nodes"`
	NsPerQuery  float64 `json:"query_ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// exprBenchServer builds an in-process coordinator holding the named
// gt streams the benchmark queries walk.
func exprBenchServer(streams, distinct int) (*server.Server, error) {
	srv := server.New(server.Config{})
	for i := 0; i < streams; i++ {
		est := core.NewEstimator(core.EstimatorConfig{Capacity: 256, Copies: 5, Seed: 42})
		for x := 0; x < distinct; x++ {
			// Half the labels are shared across every stream so the
			// intersections and differences have real mass.
			label := uint64(x)
			if x >= distinct/2 {
				label = uint64(i*distinct + x)
			}
			est.Process(label*2654435761 + 1)
		}
		env, err := sketch.Envelope(est)
		if err != nil {
			return nil, err
		}
		if err := srv.AbsorbNamed(fmt.Sprintf("s%d", i), env); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// benchExprQuery prices one expression through AnswerExpr.
func benchExprQuery(srv *server.Server, name string, e *wire.QueryExpr) (exprBenchResult, error) {
	eq := wire.ExprQuery{Expr: e}
	if _, err := srv.AnswerExpr(eq); err != nil {
		return exprBenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srv.AnswerExpr(eq); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return exprBenchResult{}, benchErr
	}
	return exprBenchResult{
		Name:        name,
		Expr:        e.String(),
		Nodes:       len(e.Leaves(nil)),
		NsPerQuery:  float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	}, nil
}

// runBenchExpr measures the evaluator shapes and writes the JSON
// report to path ("-" = stdout).
func runBenchExpr(path string) error {
	const (
		streams  = 4
		distinct = 20000
	)
	srv, err := exprBenchServer(streams, distinct)
	if err != nil {
		return err
	}

	deep := wire.Leaf("s0")
	for i := 1; i < 16; i++ {
		deep = wire.Union(deep, wire.Leaf(fmt.Sprintf("s%d", i%streams)))
	}
	shapes := []struct {
		name string
		expr *wire.QueryExpr
	}{
		{"leaf", wire.Leaf("s0")},
		{"union", wire.Union(wire.Leaf("s0"), wire.Leaf("s1"))},
		{"intersect", wire.Intersect(wire.Leaf("s0"), wire.Leaf("s1"))},
		{"nested", wire.Diff(wire.Intersect(wire.Union(wire.Leaf("s0"), wire.Leaf("s1")), wire.Leaf("s2")), wire.Leaf("s3"))},
		{"deep-union-16", deep},
		{"jaccard", wire.Jaccard(wire.Leaf("s0"), wire.Leaf("s1"))},
	}

	report := exprBenchReport{
		Tool:   "gtbench -bench-expr",
		Note:   "set-expression evaluation (AnswerExpr) per shape on an in-process coordinator; regenerate with: go run ./cmd/gtbench -bench-expr BENCH_expr.json",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Sketch: exprBenchSketch{Kind: "gt", Capacity: 256, Copies: 5, Streams: streams, Distinct: distinct},
	}
	for _, s := range shapes {
		res, err := benchExprQuery(srv, s.name, s.expr)
		if err != nil {
			return err
		}
		report.Queries = append(report.Queries, res)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
