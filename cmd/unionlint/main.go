// Command unionlint is the repository's static-analysis suite: ten
// analyzers encoding the invariants the coordinated-sampling scheme
// depends on (seedcheck, lockcheck, lockorder, floatcmp, errcontract,
// allocflow, kindcheck, mergepure, ackcontract, failpointcheck —
// see `unionlint -help` or README "Static analysis").
//
// It runs in two modes:
//
//	go vet -vettool=$(go env GOPATH)/bin/unionlint ./...
//
// speaks the go command's vet-tool protocol (this is what ci.sh runs:
// it covers test compilations, caches per package, and round-trips
// analyzer facts through .vetx files), and
//
//	unionlint [flags] ./...
//
// loads packages itself in dependency order (so facts flow the same
// way) and prints findings grouped per analyzer. Standalone-only
// flags: -fix applies the mechanical suggested fixes (errcontract's
// %w rewrites); -json emits one JSON object per diagnostic for CI
// artifacts; -allocflow.update regenerates the allocation-budget
// baseline (lint/allocflow.baseline); -summarize regroups vet-mode
// output read from stdin.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args))
}

func run(argv []string) int {
	progname := filepath.Base(argv[0])
	args := argv[1:]
	analyzers := registry.Analyzers()

	// The two go-command handshakes come before normal flag parsing:
	// cmd/go invokes them with exactly one argument.
	if len(args) == 1 && args[0] == "-V=full" {
		driver.PrintVersion(os.Stdout, progname)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		driver.PrintFlagDefs(os.Stdout, analyzers)
		return 0
	}

	fs := flag.NewFlagSet(progname, flag.ContinueOnError)
	fix := fs.Bool("fix", false, "apply suggested fixes to the source tree (standalone mode)")
	jsonOut := fs.Bool("json", false, "print findings as JSON Lines (one diagnostic per line) instead of the grouped summary")
	summarize := fs.Bool("summarize", false, "read vet-mode diagnostics from stdin and print a per-analyzer summary")
	update := fs.Bool("allocflow.update", false, "regenerate lint/allocflow.baseline from the current tree (alias for -allocflow.write=1)")
	// hotpathalloc was superseded by allocflow (PR 10); keep its update
	// flag as a signpost instead of a silent unknown-flag error.
	retired := fs.Bool("hotpathalloc.update", false, "retired: hotpathalloc was superseded by allocflow; use -allocflow.update")
	verbose := fs.Bool("v", false, "also list analyzers that found nothing")
	var flagVals []*string
	var flagRefs []*analysis.Flag
	for _, a := range analyzers {
		for _, f := range a.Flags {
			v := fs.String(a.Name+"."+f.Name, f.Value, f.Usage)
			flagVals = append(flagVals, v)
			flagRefs = append(flagRefs, f)
		}
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [package patterns | path/to/vet.cfg]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for i, f := range flagRefs {
		f.Value = *flagVals[i]
	}

	if *summarize {
		if err := driver.Summarize(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		return 0
	}

	rest := fs.Args()

	// Vet-tool mode: the go command passes a single *.cfg file.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return driver.RunVetUnit(rest[0], analyzers)
	}

	// Standalone mode.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *retired {
		fmt.Fprintf(os.Stderr, "%s: -hotpathalloc.update is retired: the intra-function scan was superseded by the interprocedural allocflow analyzer; run -allocflow.update to regenerate lint/allocflow.baseline\n", progname)
		return 2
	}
	if *update {
		// -allocflow.update is the documented way to regenerate the
		// baseline; it simply arms the analyzer's write flag.
		if w := lookupFlag(analyzers, "allocflow", "write"); w != nil {
			w.Value = "1"
		}
	}
	if err := prepareBaselineWrite(analyzers); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	pkgs, err := driver.LoadModulePackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	// One shared fact store; packages arrive in dependency order, so
	// by the time a package runs, every fact of its transitive imports
	// is present, and the per-package view hides everything else.
	store := driver.NewFactStore(analyzers)
	var findings []driver.Finding
	for _, pkg := range pkgs {
		visible := make(map[string]bool, len(pkg.Deps))
		for _, d := range pkg.Deps {
			visible[d] = true
		}
		fs, err := driver.RunAnalyzers(pkg, analyzers, store.View(pkg.Pkg, visible))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		findings = append(findings, fs...)
	}
	if *fix {
		n, err := driver.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: applying fixes: %v\n", progname, err)
			return 1
		}
		fmt.Printf("%s: applied %d suggested fix(es)\n", progname, n)
		return 0
	}
	if *update {
		fmt.Printf("%s: regenerated allocflow baseline\n", progname)
	}
	if *jsonOut {
		if err := driver.PrintJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	if len(findings) == 0 {
		if *verbose {
			for _, a := range analyzers {
				fmt.Printf("-- %s: ok\n", a.Name)
			}
		}
		fmt.Printf("%s: %d package(s) clean\n", progname, len(pkgs))
		return 0
	}
	driver.PrintGrouped(os.Stdout, findings)
	fmt.Printf("%s: %d finding(s)\n", progname, len(findings))
	return 1
}

// lookupFlag finds one analyzer flag by analyzer and flag name.
func lookupFlag(analyzers []*analysis.Analyzer, analyzer, name string) *analysis.Flag {
	for _, a := range analyzers {
		if a.Name == analyzer {
			return a.Lookup(name)
		}
	}
	return nil
}

// prepareBaselineWrite truncates the allocflow baseline before an
// -allocflow.update / -allocflow.write sweep (each package pass
// appends to it), filling in the default module path when the flag is
// unset.
func prepareBaselineWrite(analyzers []*analysis.Analyzer) error {
	var af *analysis.Analyzer
	for _, a := range analyzers {
		if a.Name == "allocflow" {
			af = a
		}
	}
	if af == nil {
		return nil
	}
	w, b := af.Lookup("write"), af.Lookup("baseline")
	if w == nil || b == nil || (w.Value != "1" && w.Value != "true") {
		return nil
	}
	if b.Value == "" {
		root, _, err := driver.FindModule(".")
		if err != nil {
			return err
		}
		b.Value = filepath.Join(root, "lint", "allocflow.baseline")
	}
	if err := os.MkdirAll(filepath.Dir(b.Value), 0o755); err != nil {
		return err
	}
	header := "# allocflow baseline: accepted transitive allocation budgets for hotpath roots.\n" +
		"# One \"root<TAB>owner<TAB>kind<TAB>count\" line per bucket (kind calls-unknown\n" +
		"# counts dynamic calls the analyzer cannot bound). Do not edit by hand; regenerate with:\n" +
		"#   go run ./cmd/unionlint -allocflow.update ./...\n"
	return os.WriteFile(b.Value, []byte(header), 0o644)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
