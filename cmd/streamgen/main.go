// Command streamgen writes synthetic stream files in the repository's
// binary format, for use with cmd/unioncount and external tooling.
//
// Usage:
//
//	streamgen -o stream.gts -kind uniform -n 100000 -universe 50000 [-seed N]
//	streamgen -o s.gts -kind zipf -n 100000 -universe 50000 -skew 1.2
//	streamgen -o s.gts -kind sequential -n 100000
//	streamgen -o site -kind overlap -sites 4 -n 100000 -universe 50000 -overlap 0.5
//
// The overlap kind writes one file per site (site0.gts, site1.gts, …)
// with the given cross-site duplication probability.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stream"
)

func main() {
	var (
		out      = flag.String("o", "", "output path (required; prefix for -kind overlap)")
		kind     = flag.String("kind", "uniform", "uniform | zipf | sequential | overlap")
		n        = flag.Int("n", 100000, "items per stream")
		universe = flag.Uint64("universe", 50000, "label universe size (uniform/zipf; per-region for overlap)")
		skew     = flag.Float64("skew", 1.0, "zipf skew s")
		seed     = flag.Uint64("seed", 1, "generator seed")
		sites    = flag.Int("sites", 4, "site count (overlap)")
		overlap  = flag.Float64("overlap", 0.5, "probability an item comes from the shared core (overlap)")
		valueMod = flag.Uint64("values", 0, "if > 0, attach value = label % values + 1 to each item")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "streamgen: -o is required")
		os.Exit(2)
	}

	withValues := func(src stream.Source) stream.Source {
		if *valueMod == 0 {
			return src
		}
		m := *valueMod
		return stream.NewWithValues(src, func(l uint64) uint64 { return l%m + 1 })
	}

	write := func(path string, src stream.Source) {
		if err := stream.WriteFile(path, withValues(src)); err != nil {
			fmt.Fprintln(os.Stderr, "streamgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d items)\n", path, stream.Count(src))
	}

	switch *kind {
	case "uniform":
		write(*out, stream.NewUniform(*universe, *n, *seed))
	case "zipf":
		write(*out, stream.NewZipf(*universe, *n, *skew, *seed))
	case "sequential":
		write(*out, stream.NewSequential(*n))
	case "overlap":
		cfg := stream.OverlapConfig{
			Sites: *sites, PerSite: *n,
			CoreSize: *universe, PrivateSize: *universe,
			Overlap: *overlap, Seed: *seed,
		}
		for i, src := range cfg.Build() {
			write(fmt.Sprintf("%s%d.gts", *out, i), src)
		}
	default:
		fmt.Fprintf(os.Stderr, "streamgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
