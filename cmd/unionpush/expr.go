package main

// The -expr grammar: a tiny recursive-descent parser from the textual
// set-expression syntax to the wire.QueryExpr tree the coordinator
// evaluates. Mirrors wire.(*QueryExpr).String, so rendering a parsed
// tree and re-parsing it round-trips.
//
//	expr    := union ( '~' union )?     jaccard similarity, root only
//	union   := diff  ( '|' diff  )*
//	diff    := inter ( '-' inter )*
//	inter   := atom  ( '&' atom  )*
//	atom    := '(' union ')' | name | "quoted name"
//
// '&' binds tightest, then '-', then '|' — so
// `ads & (buys | clicks) - spam` parses as ((ads & (buys|clicks)) -
// spam). Bare names are runs of letters, digits, '_', '.', ':' and
// '/'; anything else (spaces, operators, the empty default-stream
// name) needs double quotes with Go escaping.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// parseExpr parses one set expression and validates the result.
func parseExpr(src string) (*wire.QueryExpr, error) {
	p := &exprParser{src: src}
	e, err := p.parseRoot()
	if err != nil {
		return nil, fmt.Errorf("parsing %q: %w", src, err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("parsing %q: %w", src, err)
	}
	return e, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) parseRoot() (*wire.QueryExpr, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.peek() == '~' {
		p.pos++
		right, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		left = wire.Jaccard(left, right)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("unexpected %q at offset %d (jaccard '~' is only legal at the top level)", p.src[p.pos:], p.pos)
	}
	return left, nil
}

func (p *exprParser) parseUnion() (*wire.QueryExpr, error) {
	left, err := p.parseDiff()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		right, err := p.parseDiff()
		if err != nil {
			return nil, err
		}
		left = wire.Union(left, right)
	}
	return left, nil
}

func (p *exprParser) parseDiff() (*wire.QueryExpr, error) {
	left, err := p.parseIntersect()
	if err != nil {
		return nil, err
	}
	for p.peek() == '-' {
		p.pos++
		right, err := p.parseIntersect()
		if err != nil {
			return nil, err
		}
		left = wire.Diff(left, right)
	}
	return left, nil
}

func (p *exprParser) parseIntersect() (*wire.QueryExpr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		left = wire.Intersect(left, right)
	}
	return left, nil
}

func (p *exprParser) parseAtom() (*wire.QueryExpr, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == '"':
		start := p.pos
		p.pos++
		for p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '\\':
				p.pos += 2
				continue
			case '"':
				p.pos++
				name, err := strconv.Unquote(p.src[start:p.pos])
				if err != nil {
					return nil, fmt.Errorf("bad quoted stream name %s: %v", p.src[start:p.pos], err)
				}
				return wire.Leaf(name), nil
			}
			p.pos++
		}
		return nil, fmt.Errorf("unterminated quoted name at offset %d", start)
	case isNameByte(c):
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		return wire.Leaf(p.src[start:p.pos]), nil
	case c == 0:
		return nil, fmt.Errorf("expression ends where a stream name or '(' was expected")
	default:
		return nil, fmt.Errorf("unexpected %q at offset %d", c, p.pos)
	}
}

// peek skips whitespace and returns the next byte without consuming
// it (0 at end of input).
func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func isNameByte(c byte) bool {
	return c == '_' || c == '.' || c == ':' || c == '/' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
		c >= 0x80 // UTF-8 continuation/lead bytes: names are arbitrary strings
}

// renderExprResult pretty-prints an evaluated tree, one node per line,
// children indented under their operator.
func renderExprResult(sb *strings.Builder, res *wire.ExprResult, depth int) {
	if res == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	switch res.Op {
	case wire.OpLeaf:
		name := res.Stream
		if name == "" {
			name = `""`
		}
		fmt.Fprintf(sb, "%s%-10s = %.6g (±%.2g rel)\n", indent, name, res.Value, res.ErrBound)
	default:
		fmt.Fprintf(sb, "%s%-10s = %.6g (±%.2g rel)\n", indent, res.Op, res.Value, res.ErrBound)
		renderExprResult(sb, res.Left, depth+1)
		renderExprResult(sb, res.Right, depth+1)
	}
}
