package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestParseExpr pins the grammar: precedence ('&' over '-' over '|'),
// left associativity, parentheses, quoting, and the root-only '~'.
// Expectations are the wire tree's canonical String rendering.
func TestParseExpr(t *testing.T) {
	good := []struct{ in, want string }{
		{"a", "a"},
		{" a ", "a"},
		{`""`, `""`},
		{"a|b", "(a | b)"},
		{"a | b | c", "((a | b) | c)"},
		{"a - b - c", "((a - b) - c)"},
		{"a & b | c", "((a & b) | c)"},
		{"a | b & c", "(a | (b & c))"},
		{"a & b - c", "((a & b) - c)"},
		{"a - b & c", "(a - (b & c))"},
		{"ads & (buys | clicks) - spam", "((ads & (buys | clicks)) - spam)"},
		{"(a)", "a"},
		{"((a | b))", "(a | b)"},
		{"a ~ b", "(a ~ b)"},
		{"a | b ~ c & d", "((a | b) ~ (c & d))"},
		{`"a" & b`, "(a & b)"},
		{"site_0:7600/x & b", "(site_0:7600/x & b)"},
	}
	for _, tc := range good {
		e, err := parseExpr(tc.in)
		if err != nil {
			t.Errorf("parseExpr(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("parseExpr(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}

	// Quoted names admit what bare tokens cannot.
	e, err := parseExpr(`"two words" & "a-b"`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Left.Stream != "two words" || e.Right.Stream != "a-b" {
		t.Errorf("quoted leaves parsed as %q, %q", e.Left.Stream, e.Right.Stream)
	}

	bad := []string{
		"",
		"a &",
		"| a",
		"(a | b",
		"a)",
		"a b",
		`"unterminated`,
		"a ~ b ~ c",   // '~' is non-associative
		"a ~ (b ~ c)", // ... and root-only
		"(a ~ b) & c", // parenthesizing does not move the root
		"a & (b ~ c)", // nested jaccard under an operator
	}
	for _, in := range bad {
		if e, err := parseExpr(in); err == nil {
			t.Errorf("parseExpr(%q) accepted as %s", in, e)
		}
	}
}

// TestRunNamedStreamsAndExpr drives the CLI end to end: three files
// pushed into three named streams on one coordinator, then an -expr
// run evaluating a nested expression over them.
func TestRunNamedStreamsAndExpr(t *testing.T) {
	addr := startTestServer(t, server.Config{})
	paths := writeStreams(t, 3)
	for i, name := range []string{"ads", "buys", "clicks"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-addr", addr, "-stream", name, paths[i]}, &stdout, &stderr); code != 0 {
			t.Fatalf("push to %s: exit %d, stderr:\n%s", name, code, stderr.String())
		}
	}

	// Re-pushing an already-absorbed envelope is idempotent, so the
	// -expr run can ride on any file.
	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", addr, "-stream", "ads", "-expr", "ads & (buys | clicks) - buys", paths[0]}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("expr run: exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "expression ((ads & (buys | clicks)) - buys):") {
		t.Errorf("missing expression header:\n%s", out)
	}
	for _, leaf := range []string{"ads", "buys", "clicks"} {
		if !strings.Contains(out, leaf) {
			t.Errorf("per-node breakdown missing leaf %s:\n%s", leaf, out)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", addr, "-stream", "ads", "-expr", "ads ~ buys", paths[0]}, &stdout, &stderr); code != 0 {
		t.Fatalf("jaccard run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "expression (ads ~ buys):") {
		t.Errorf("missing jaccard output:\n%s", stdout.String())
	}

	// An expression over a stream nobody pushed must fail the run.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", addr, "-stream", "ads", "-expr", "ads & nope", paths[0]}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown-stream expr: exit %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nope") {
		t.Errorf("error does not name the missing stream:\n%s", stderr.String())
	}

	// A malformed -expr is a usage error, caught before any push.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", addr, "-expr", "ads & (", paths[0]}, &stdout, &stderr); code != 2 {
		t.Fatalf("malformed expr: exit %d, want 2", code)
	}
}
