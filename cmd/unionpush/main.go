// Command unionpush is the site side of the networked protocol: it
// reads one or more stream files (the format cmd/streamgen writes),
// sketches each as one party's stream with the shared coordination
// seed, and pushes each sketch to a unionstreamd coordinator — one
// small message per site, retried with exponential backoff if the
// coordinator is briefly unreachable. With -query it then asks the
// coordinator for the union estimates.
//
// -backend selects the sketch kind: "gt" (default, the paper's
// sampler, honoring -delta) or any other registered kind ("fm",
// "ams", "bjkst", "kmv", "hll", "window", "exact").
//
// -stream names the logical stream the pushed sketches belong to (the
// default is the coordinator's unnamed default stream), and -expr
// evaluates a set expression over named streams after pushing:
//
//	unionpush -stream ads site*.gts
//	unionpush -expr 'ads & (buys | clicks) - spam' last.gts
//
// with `|` union, `&` intersect (binds tightest), `-` difference, `~`
// Jaccard similarity (top level only), parentheses, and quoted names
// for streams with spaces or operator characters.
//
// Against a sharded tier (see unionstreamd -shards), -shards lists
// every shard's address and -ring-seed pins the shared consistent-hash
// ring: each sketch is routed to the shard that owns its merge group,
// and a query goes to the same owner. An -expr whose streams span
// shards needs -parent, the aggregation parent every shard relays
// into. If any shard permanently refuses a push, unionpush keeps
// serving the remaining files, reports each failure with the shard
// index and address, and exits non-zero.
//
// Usage:
//
//	unionpush [-addr host:7600 | -shards h1:7600,h2:7600,...]
//	          [-ring-seed 42] [-parent host:7600] [-backend gt]
//	          [-eps 0.05] [-delta 0.01] [-seed 42] [-attempts 4]
//	          [-timeout 5s] [-stream name] [-query] [-expr EXPR]
//	          stream1.gts ...
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/unionstream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the exit code and the
// per-shard error reporting are testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unionpush", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7600", "coordinator TCP address")
		shards   = fs.String("shards", "", "comma-separated shard coordinator addresses (overrides -addr; routes by ring)")
		ringSeed = fs.Uint64("ring-seed", 42, "consistent-hash ring seed shared with the shards (with -shards)")
		eps      = fs.Float64("eps", 0.05, "target relative error")
		delta    = fs.Float64("delta", 0.01, "target failure probability")
		seed     = fs.Uint64("seed", 42, "shared coordination seed")
		backend  = fs.String("backend", "gt", "sketch kind to push ("+strings.Join(unionstream.Backends(), ", ")+")")
		attempts = fs.Int("attempts", 4, "push attempts per site (with exponential backoff)")
		timeout  = fs.Duration("timeout", 5*time.Second, "dial timeout")
		query    = fs.Bool("query", false, "query the union estimates after pushing")
		streamNm = fs.String("stream", "", "named stream to push into (default: the coordinator's default stream)")
		exprSrc  = fs.String("expr", "", "set expression over stream names to evaluate after pushing, e.g. 'ads & (buys | clicks) - spam'")
		parent   = fs.String("parent", "", "aggregation parent address for -expr queries whose streams span shards (with -shards)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "unionpush: need at least one stream file")
		return 2
	}
	if err := wire.ValidStreamName(*streamNm); err != nil {
		fmt.Fprintf(stderr, "unionpush: -stream: %v\n", err)
		return 2
	}
	var parsedExpr *wire.QueryExpr
	if *exprSrc != "" {
		var err error
		if parsedExpr, err = parseExpr(*exprSrc); err != nil {
			fmt.Fprintf(stderr, "unionpush: -expr: %v\n", err)
			return 2
		}
	}

	base := client.Config{DialTimeout: *timeout, Attempts: *attempts}
	opts := unionstream.Options{Epsilon: *eps, Delta: *delta, Seed: *seed}

	// push sends one envelope to its coordinator; describe names that
	// coordinator in error reports. Single-coordinator mode pushes
	// everything to -addr; -shards mode routes by the group's ring
	// owner.
	var push func(msg []byte) (tries int, describe string, err error)
	var queryClient func(msg []byte) (*client.Client, error)
	var queryExpr func(eq wire.ExprQuery, msg []byte) (*wire.ExprResult, error)
	if *shards == "" {
		base.Addr = *addr
		cl := client.New(base)
		push = func(msg []byte) (int, string, error) {
			tries, err := cl.PushNamed(*streamNm, msg)
			return tries, *addr, err
		}
		queryClient = func([]byte) (*client.Client, error) { return cl, nil }
		queryExpr = func(eq wire.ExprQuery, _ []byte) (*wire.ExprResult, error) {
			return cl.QueryExpr(eq)
		}
	} else {
		addrs := strings.Split(*shards, ",")
		ring := cluster.NewRing(len(addrs), 0, *ringSeed)
		sc, err := client.NewSharded(ring, addrs, base)
		if err != nil {
			fmt.Fprintf(stderr, "unionpush: %v\n", err)
			return 2
		}
		if *parent != "" {
			pcfg := base
			pcfg.Addr = *parent
			sc.SetParent(client.New(pcfg))
		}
		push = func(msg []byte) (int, string, error) {
			shard, tries, err := sc.PushNamed(*streamNm, msg)
			// The describe string already names the shard, so unwrap the
			// ShardError to avoid printing "shard N (addr)" twice.
			var se *client.ShardError
			if errors.As(err, &se) {
				err = se.Err
			}
			return tries, fmt.Sprintf("shard %d (%s)", shard, addrs[shard]), err
		}
		// Every file shares one backend config, so every envelope lands
		// in one merge group with one ring owner: queries go there.
		queryClient = func(msg []byte) (*client.Client, error) {
			shard, err := sc.RouteNamed(*streamNm, msg)
			if err != nil {
				return nil, err
			}
			return sc.Shard(shard), nil
		}
		queryExpr = func(eq wire.ExprQuery, msg []byte) (*wire.ExprResult, error) {
			kind, digest, ok := sketch.PeekHeader(msg)
			if !ok {
				return nil, fmt.Errorf("cannot route expression: last push is not a sketch envelope")
			}
			return sc.QueryExpr(eq, uint8(kind), digest)
		}
	}

	// sketchFile reads one stream file into a fresh sketch of the
	// selected backend and returns its envelope. The "gt" backend goes
	// through unionstream.New so -delta is honored.
	sketchFile := func(path string) (msg []byte, items int, err error) {
		src, err := stream.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		if *backend == "gt" {
			sk, err := unionstream.New(opts)
			if err != nil {
				return nil, 0, err
			}
			stream.Feed(src, func(it stream.Item) {
				sk.AddValued(it.Label, it.Value)
				items++
			})
			msg, err = sk.Envelope()
			return msg, items, err
		}
		b, err := unionstream.NewBackend(*backend, *eps, *seed)
		if err != nil {
			return nil, 0, err
		}
		stream.Feed(src, func(it stream.Item) {
			b.AddValued(it.Label, it.Value)
			items++
		})
		msg, err = b.MarshalBinary()
		return msg, items, err
	}

	failed := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(stderr, "unionpush: "+format+"\n", args...)
		failed++
	}
	var lastMsg []byte
	for _, path := range files {
		msg, n, err := sketchFile(path)
		if err != nil {
			fail("%s: %v", path, err)
			continue
		}
		lastMsg = msg
		tries, where, err := push(msg)
		switch {
		case errors.Is(err, client.ErrSeedMismatch):
			fail("%s: %s refused our coordination seed %d: %v", path, where, *seed, err)
		case errors.Is(err, client.ErrKindMismatch):
			fail("%s: %s is pinned to another sketch kind (ours: %s): %v", path, where, *backend, err)
		case errors.Is(err, client.ErrVersionMismatch):
			fail("%s: %s speaks a different protocol version: %v", path, where, err)
		case err != nil:
			fail("%s: %s: %v", path, where, err)
		default:
			fmt.Fprintf(stdout, "site %-24s %8d items, pushed %6d bytes (attempt %d)\n", path, n, len(msg), tries)
		}
	}

	if *query && lastMsg != nil {
		cl, err := queryClient(lastMsg)
		if err != nil {
			fail("query routing: %v", err)
		} else {
			distinct, err := cl.DistinctCount(*seed)
			if err != nil {
				fail("distinct query: %v", err)
			}
			sum, err := cl.SumDistinct(*seed)
			if err != nil {
				fail("sum query: %v", err)
			}
			if failed == 0 {
				fmt.Fprintf(stdout, "\nunion distinct estimate: %.0f\n", distinct)
				fmt.Fprintf(stdout, "union sum estimate:      %.0f\n", sum)
			}
		}
	}

	if parsedExpr != nil && lastMsg != nil {
		// The seed filter pins expression leaves to this run's
		// coordination seed, so a coordinator holding several
		// configurations of the same stream still resolves uniquely.
		eq := wire.ExprQuery{HasSeed: true, Seed: *seed, Expr: parsedExpr}
		res, err := queryExpr(eq, lastMsg)
		if err != nil {
			fail("expression %s: %v", parsedExpr, err)
		} else {
			var sb strings.Builder
			renderExprResult(&sb, res, 0)
			fmt.Fprintf(stdout, "\nexpression %s:\n%s", parsedExpr, sb.String())
		}
	}

	if failed > 0 {
		fmt.Fprintf(stderr, "unionpush: %d of %d pushes failed\n", failed, len(files))
		return 1
	}
	return 0
}
