// Command unionpush is the site side of the networked protocol: it
// reads one or more stream files (the format cmd/streamgen writes),
// sketches each as one party's stream with the shared coordination
// seed, and pushes each sketch to a unionstreamd coordinator — one
// small message per site, retried with exponential backoff if the
// coordinator is briefly unreachable. With -query it then asks the
// coordinator for the union estimates.
//
// -backend selects the sketch kind: "gt" (default, the paper's
// sampler, honoring -delta) or any other registered kind ("fm",
// "ams", "bjkst", "kmv", "hll", "window", "exact").
//
// Usage:
//
//	unionpush [-addr host:7600] [-backend gt] [-eps 0.05] [-delta 0.01]
//	          [-seed 42] [-attempts 4] [-timeout 5s] [-query]
//	          stream1.gts ...
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"strings"

	"repro/internal/client"
	"repro/internal/stream"
	"repro/unionstream"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "coordinator TCP address")
		eps      = flag.Float64("eps", 0.05, "target relative error")
		delta    = flag.Float64("delta", 0.01, "target failure probability")
		seed     = flag.Uint64("seed", 42, "shared coordination seed")
		backend  = flag.String("backend", "gt", "sketch kind to push ("+strings.Join(unionstream.Backends(), ", ")+")")
		attempts = flag.Int("attempts", 4, "push attempts per site (with exponential backoff)")
		timeout  = flag.Duration("timeout", 5*time.Second, "dial timeout")
		query    = flag.Bool("query", false, "query the union estimates after pushing")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "unionpush: need at least one stream file")
		os.Exit(2)
	}

	cl := client.New(client.Config{
		Addr:        *addr,
		DialTimeout: *timeout,
		Attempts:    *attempts,
	})
	opts := unionstream.Options{Epsilon: *eps, Delta: *delta, Seed: *seed}

	// sketchFile reads one stream file into a fresh sketch of the
	// selected backend and returns its envelope. The "gt" backend goes
	// through unionstream.New so -delta is honored.
	sketchFile := func(path string) (msg []byte, items int, err error) {
		src, err := stream.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		if *backend == "gt" {
			sk, err := unionstream.New(opts)
			if err != nil {
				return nil, 0, err
			}
			stream.Feed(src, func(it stream.Item) {
				sk.AddValued(it.Label, it.Value)
				items++
			})
			msg, err = sk.Envelope()
			return msg, items, err
		}
		b, err := unionstream.NewBackend(*backend, *eps, *seed)
		if err != nil {
			return nil, 0, err
		}
		stream.Feed(src, func(it stream.Item) {
			b.AddValued(it.Label, it.Value)
			items++
		})
		msg, err = b.MarshalBinary()
		return msg, items, err
	}

	for _, path := range files {
		msg, n, err := sketchFile(path)
		if err != nil {
			fail("%s: %v", path, err)
		}
		tries, err := cl.Push(msg)
		switch {
		case errors.Is(err, client.ErrSeedMismatch):
			fail("%s: coordinator refused our coordination seed %d: %v", path, *seed, err)
		case errors.Is(err, client.ErrKindMismatch):
			fail("%s: coordinator is pinned to another sketch kind (ours: %s): %v", path, *backend, err)
		case errors.Is(err, client.ErrVersionMismatch):
			fail("%s: coordinator speaks a different protocol version: %v", path, err)
		case err != nil:
			fail("%s: %v", path, err)
		}
		fmt.Printf("site %-24s %8d items, pushed %6d bytes (attempt %d)\n", path, n, len(msg), tries)
	}

	if *query {
		distinct, err := cl.DistinctCount(*seed)
		if err != nil {
			fail("distinct query: %v", err)
		}
		sum, err := cl.SumDistinct(*seed)
		if err != nil {
			fail("sum query: %v", err)
		}
		fmt.Printf("\nunion distinct estimate: %.0f\n", distinct)
		fmt.Printf("union sum estimate:      %.0f\n", sum)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "unionpush: "+format+"\n", args...)
	os.Exit(1)
}
