package main

// In-process regression tests for the unionpush CLI: run() against
// real coordinators, checking the exit code contract — in particular
// that a permanently failing shard is reported by index and address
// and turns the exit code non-zero while other work continues.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/unionstream"
)

func startTestServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// writeStreams writes n small stream files with overlapping labels and
// returns their paths.
func writeStreams(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, n)
	for i := range paths {
		labels := make([]uint64, 0, 50)
		for x := uint64(i) * 30; x < uint64(i)*30+50; x++ {
			labels = append(labels, x)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("site%d.gts", i))
		if err := stream.WriteFile(paths[i], stream.FromLabels(labels)); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// ownerShard computes which shard the default-config gt group lands
// on — the same routing run() performs.
func ownerShard(t *testing.T, shards int, ringSeed uint64) int {
	t.Helper()
	sk, err := unionstream.New(unionstream.Options{Epsilon: 0.05, Delta: 0.01, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	env, err := sk.Envelope()
	if err != nil {
		t.Fatal(err)
	}
	kind, digest, ok := sketch.PeekHeader(env)
	if !ok {
		t.Fatal("gt envelope failed to peek")
	}
	return cluster.NewRing(shards, 0, ringSeed).OwnerOf(uint8(kind), digest)
}

func TestRunSingleCoordinator(t *testing.T) {
	addr := startTestServer(t, server.Config{})
	paths := writeStreams(t, 3)
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-addr", addr, "-query"}, paths...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "union distinct estimate") {
		t.Errorf("missing query output:\n%s", stdout.String())
	}
}

func TestRunShardedPushesAndQueries(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = startTestServer(t, server.Config{})
	}
	paths := writeStreams(t, 4)
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-shards", strings.Join(addrs, ","), "-ring-seed", "42", "-query"}, paths...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if got := strings.Count(stdout.String(), "site "); got != len(paths) {
		t.Errorf("%d site lines, want %d:\n%s", got, len(paths), stdout.String())
	}
	if !strings.Contains(stdout.String(), "union distinct estimate") {
		t.Errorf("missing query output (query must route to the owning shard):\n%s", stdout.String())
	}
}

// TestRunShardedFailingShardExitsNonZero is the satellite regression:
// when the shard owning the pushed group permanently refuses, run()
// must name that shard (index and address) on stderr and exit 1.
func TestRunShardedFailingShardExitsNonZero(t *testing.T) {
	const shards = 3
	owner := ownerShard(t, shards, 42)
	addrs := make([]string, shards)
	for i := range addrs {
		cfg := server.Config{}
		if i == owner {
			cfg.RequireKind = "kmv" // gt pushes are permanently refused
		}
		addrs[i] = startTestServer(t, cfg)
	}
	paths := writeStreams(t, 2)
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-shards", strings.Join(addrs, ","), "-ring-seed", "42"}, paths...), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr.String())
	}
	msg := stderr.String()
	wantShard := fmt.Sprintf("shard %d (%s)", owner, addrs[owner])
	if !strings.Contains(msg, wantShard) {
		t.Errorf("stderr does not name the failing %s:\n%s", wantShard, msg)
	}
	if !strings.Contains(msg, fmt.Sprintf("%d of %d pushes failed", len(paths), len(paths))) {
		t.Errorf("stderr missing the failure tally:\n%s", msg)
	}
}

// TestRunShardedUnaffectedByOtherShardPinning: pinning a shard that
// does NOT own the group must not fail the run — failures are
// attributed to the shard actually dialed, not the fleet.
func TestRunShardedUnaffectedByOtherShardPinning(t *testing.T) {
	const shards = 3
	owner := ownerShard(t, shards, 42)
	addrs := make([]string, shards)
	for i := range addrs {
		cfg := server.Config{}
		if i != owner {
			cfg.RequireKind = "kmv"
		}
		addrs[i] = startTestServer(t, cfg)
	}
	paths := writeStreams(t, 2)
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-shards", strings.Join(addrs, ","), "-ring-seed", "42"}, paths...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr.String())
	}
}
