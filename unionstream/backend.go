package unionstream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sketch"

	// Register every sketch kind so any backend name resolves and any
	// envelope decodes.
	_ "repro/internal/sketch/kinds"
)

// Backend is a mergeable sketch of any registered kind behind one
// uniform surface. Where Sketch is the paper's estimator with its
// full query set, a Backend trades query richness for choice: the
// same code can run the paper's sampler ("gt"), any comparison
// baseline ("fm", "ams", "bjkst", "kmv", "hll"), the sliding-window
// extension ("window"), or the exact set ("exact"), and every one of
// them travels the same self-describing envelope that unionstreamd
// merges by kind.
type Backend struct {
	name string
	sk   sketch.Sketch
	// w is non-nil when the kind supports weighted labels.
	w sketch.Weighted
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	names := sketch.Names()
	sort.Strings(names)
	return names
}

// NewBackend returns an empty sketch of the named kind targeting
// relative error epsilon (0 means 0.05) with the given coordination
// seed. Backends that will ever be merged must share name, epsilon,
// and seed.
func NewBackend(name string, epsilon float64, seed uint64) (*Backend, error) {
	if epsilon == 0 {
		epsilon = 0.05
	}
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("unionstream: epsilon %v outside (0, 1]", epsilon)
	}
	info, ok := sketch.LookupName(name)
	if !ok {
		return nil, fmt.Errorf("unionstream: unknown backend %q (have %v): %w",
			name, Backends(), sketch.ErrUnknownKind)
	}
	return wrapBackend(info.Name, info.New(epsilon, seed)), nil
}

func wrapBackend(name string, sk sketch.Sketch) *Backend {
	w, _ := sk.(sketch.Weighted)
	return &Backend{name: name, sk: sk, w: w}
}

// DecodeBackend opens a MarshalBinary envelope of any registered
// kind.
func DecodeBackend(envelope []byte) (*Backend, error) {
	sk, err := sketch.Open(envelope)
	if err != nil {
		return nil, err
	}
	info, _ := sketch.Lookup(sk.Kind())
	return wrapBackend(info.Name, sk), nil
}

// Name returns the backend's registered kind name.
func (b *Backend) Name() string { return b.name }

// Seed returns the coordination seed.
func (b *Backend) Seed() uint64 { return b.sk.Seed() }

// Add observes one occurrence of a 64-bit label.
func (b *Backend) Add(label uint64) { b.sk.Process(label) }

// AddValued observes a label carrying a fixed integer value. Kinds
// without weighted support ("fm", "hll", ...) record the label and
// drop the value — SumDistinct then reports NaN, not a wrong number.
func (b *Backend) AddValued(label, value uint64) {
	if b.w != nil {
		b.w.ProcessWeighted(label, value)
		return
	}
	b.sk.Process(label)
}

// Merge folds other into b. Both must be the same kind with the same
// configuration; otherwise Merge returns an error wrapping
// ErrMismatch and leaves b unchanged.
func (b *Backend) Merge(other *Backend) error {
	if other == nil {
		return fmt.Errorf("unionstream: merge with nil backend: %w", ErrMismatch)
	}
	return b.sk.Merge(other.sk)
}

// DistinctCount estimates the number of distinct labels in the union
// of all streams merged into b.
func (b *Backend) DistinctCount() float64 { return b.sk.Estimate() }

// SumDistinct estimates the sum of values over distinct labels, or
// NaN when the kind cannot answer sums.
func (b *Backend) SumDistinct() float64 {
	if sum, ok := b.sk.(sketch.Summer); ok {
		return sum.EstimateSum()
	}
	return math.NaN()
}

// MarshalBinary encodes the sketch as a self-describing envelope —
// the message a party pushes to unionstreamd, decodable by
// DecodeBackend whatever its kind.
func (b *Backend) MarshalBinary() ([]byte, error) { return sketch.Envelope(b.sk) }

// SizeBytes returns the wire size of the encoded envelope.
func (b *Backend) SizeBytes() int {
	env, err := b.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(env)
}
