package unionstream

import (
	"math"
	"testing"
)

func TestDefaults(t *testing.T) {
	s, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eps := s.Epsilon(); eps > 0.06 {
		t.Errorf("default epsilon = %v, want <= ~0.05", eps)
	}
	if s.Copies() < 3 {
		t.Errorf("default copies = %d", s.Copies())
	}
}

func TestOptionValidation(t *testing.T) {
	bad := []Options{
		{Epsilon: -0.1},
		{Epsilon: 1.5},
		{Delta: -0.1},
		{Delta: 1},
		{Capacity: -1},
		{Copies: -1},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestEndToEndUnion(t *testing.T) {
	opts := Options{Epsilon: 0.05, Delta: 0.01, Seed: 42}
	a, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 60k labels at A, 60k at B, 20k shared → union = 100k.
	for x := uint64(0); x < 60000; x++ {
		a.Add(x)
	}
	for x := uint64(40000); x < 100000; x++ {
		b.Add(x)
	}
	// Ship B's sketch as bytes, as a remote party would.
	msg, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(decoded); err != nil {
		t.Fatal(err)
	}
	got := a.DistinctCount()
	if rel := math.Abs(got-100000) / 100000; rel > 0.07 {
		t.Errorf("union estimate %.0f, rel err %.3f", got, rel)
	}
}

func TestMergeMismatch(t *testing.T) {
	a, _ := New(Options{Seed: 1})
	b, _ := New(Options{Seed: 2})
	err := a.Merge(b)
	if err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if !IsMismatch(err) {
		t.Errorf("IsMismatch(%v) = false", err)
	}
	if err := a.Merge(nil); !IsMismatch(err) {
		t.Error("nil merge not a mismatch")
	}
}

func TestValuedAndPredicates(t *testing.T) {
	s, _ := New(Options{Epsilon: 0.05, Seed: 3})
	const n = 50000
	for x := uint64(0); x < n; x++ {
		s.AddValued(x, x%5+1) // mean value 3
	}
	if rel := math.Abs(s.SumDistinct()-3*n) / (3 * n); rel > 0.08 {
		t.Errorf("SumDistinct rel err %.3f", rel)
	}
	even := s.CountWhere(func(x uint64) bool { return x%2 == 0 })
	if rel := math.Abs(even-n/2) / (n / 2); rel > 0.10 {
		t.Errorf("CountWhere rel err %.3f", rel)
	}
	evenSum := s.SumWhere(func(x uint64) bool { return x%2 == 0 })
	wantEvenSum := float64(n/2) * 3 // labels 0,2,4,... have values 1,3,5,1,3... mean 3
	if rel := math.Abs(evenSum-wantEvenSum) / wantEvenSum; rel > 0.12 {
		t.Errorf("SumWhere = %.0f, want ~%.0f (rel %.3f)", evenSum, wantEvenSum, rel)
	}
}

func TestStringLabels(t *testing.T) {
	opts := Options{Epsilon: 0.1, Seed: 9}
	a, _ := New(opts)
	b, _ := New(opts)
	// Same string must hash identically in separate sketches.
	a.AddString("host-17")
	b.AddBytes([]byte("host-17"))
	am, _ := a.MarshalBinary()
	bm, _ := b.MarshalBinary()
	if string(am) != string(bm) {
		t.Error("AddString and AddBytes disagree")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
	s, _ := New(Options{Seed: 1})
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil decoded")
	}
}

func TestResetClone(t *testing.T) {
	s, _ := New(Options{Epsilon: 0.2, Seed: 5})
	for x := uint64(0); x < 1000; x++ {
		s.Add(x)
	}
	c := s.Clone()
	s.Reset()
	if s.DistinctCount() != 0 {
		t.Error("Reset incomplete")
	}
	if c.DistinctCount() == 0 {
		t.Error("Clone not independent")
	}
	// Reset sketch remains coordinated with a fresh one.
	s.Add(7)
	fresh, _ := New(Options{Epsilon: 0.2, Seed: 5})
	fresh.Add(7)
	if err := s.Merge(fresh); err != nil {
		t.Errorf("reset sketch lost coordination: %v", err)
	}
}

func TestSizeBytesSmall(t *testing.T) {
	s, _ := New(Options{Epsilon: 0.05, Delta: 0.01, Seed: 1})
	for x := uint64(0); x < 1000000; x++ {
		s.Add(x)
	}
	// 1M distinct labels (8 MB raw) must compress to a few hundred KB
	// at most; with ε=0.05, δ=0.01 the sketch is ~capacity·copies
	// entries.
	if s.SizeBytes() > 1<<20 {
		t.Errorf("sketch size %d bytes is not 'small space'", s.SizeBytes())
	}
	if s.SizeBytes() == 0 {
		t.Error("zero size")
	}
}

func TestAdvancedOverrides(t *testing.T) {
	s, err := New(Options{Capacity: 64, Copies: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Copies() != 3 {
		t.Errorf("Copies = %d, want 3", s.Copies())
	}
}

func TestSetOperations(t *testing.T) {
	opts := Options{Epsilon: 0.03, Seed: 31}
	a, _ := New(opts)
	b, _ := New(opts)
	// |A|=60k, |B|=60k, |A∩B|=20k, |A\B|=40k, J=0.2.
	for x := uint64(0); x < 60000; x++ {
		a.Add(x)
	}
	for x := uint64(40000); x < 100000; x++ {
		b.Add(x)
	}
	inter, err := a.IntersectionCount(b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(inter-20000) / 20000; rel > 0.15 {
		t.Errorf("intersection rel %.3f", rel)
	}
	diff, err := a.DifferenceCount(b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(diff-40000) / 40000; rel > 0.15 {
		t.Errorf("difference rel %.3f", rel)
	}
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.2) > 0.04 {
		t.Errorf("jaccard = %.3f, want ~0.2", j)
	}
	// Mismatch & nil paths.
	c, _ := New(Options{Epsilon: 0.03, Seed: 32})
	if _, err := a.IntersectionCount(c); !IsMismatch(err) {
		t.Error("intersection accepted mismatched sketch")
	}
	if _, err := a.DifferenceCount(nil); !IsMismatch(err) {
		t.Error("difference accepted nil")
	}
	if _, err := a.Jaccard(nil); !IsMismatch(err) {
		t.Error("jaccard accepted nil")
	}
}

func TestAddAllMatchesAdd(t *testing.T) {
	opts := Options{Epsilon: 0.1, Seed: 77}
	serial, _ := New(opts)
	batch, _ := New(opts)
	labels := make([]uint64, 50000)
	for i := range labels {
		labels[i] = uint64(i * 31 % 20011)
	}
	for _, l := range labels {
		serial.Add(l)
	}
	batch.AddAll(labels, 0)
	a, _ := serial.MarshalBinary()
	b, _ := batch.MarshalBinary()
	if string(a) != string(b) {
		t.Error("AddAll state differs from sequential Add")
	}
}

func TestWindowSketchPublicAPI(t *testing.T) {
	opts := WindowOptions{Epsilon: 0.05, Seed: 1}
	a, err := NewWindow(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWindow(opts)
	if err != nil {
		t.Fatal(err)
	}
	for ts := uint64(1); ts <= 5000; ts++ {
		if err := a.Add(ts, ts); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(ts+2500, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.LastTimestamp() != 5000 {
		t.Errorf("LastTimestamp = %d", a.LastTimestamp())
	}
	got, err := a.DistinctSince(4001)
	if err != nil {
		t.Fatal(err)
	}
	// Window [4001,5000]: labels 4001..5000 and 6501..7500 → 2000,
	// estimated within epsilon.
	if rel := math.Abs(got-2000) / 2000; rel > 0.10 {
		t.Errorf("windowed union = %.0f, rel %.3f", got, rel)
	}
	if a.MemoryEntries() == 0 {
		t.Error("MemoryEntries = 0")
	}
	// Error paths.
	if err := a.Add(1, 10); err == nil {
		t.Error("out-of-order accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	c, _ := NewWindow(WindowOptions{Epsilon: 0.05, Seed: 99})
	if err := a.Merge(c); err == nil {
		t.Error("seed mismatch accepted")
	}
}

func TestNewWindowValidation(t *testing.T) {
	bad := []WindowOptions{
		{Epsilon: -1},
		{Epsilon: 2},
		{Capacity: -4},
		{MaxLevel: -1},
		{MaxLevel: 99},
	}
	for i, o := range bad {
		if _, err := NewWindow(o); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
}

func TestWindowSketchSerialization(t *testing.T) {
	opts := WindowOptions{Epsilon: 0.1, Seed: 5}
	a, _ := NewWindow(opts)
	for ts := uint64(1); ts <= 3000; ts++ {
		if err := a.Add(ts%700, ts); err != nil {
			t.Fatal(err)
		}
	}
	msg, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if a.SizeBytes() != len(msg) {
		t.Errorf("SizeBytes %d != len(msg) %d", a.SizeBytes(), len(msg))
	}
	got, err := DecodeWindow(msg)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := a.DistinctLast(500)
	y, err := got.DistinctLast(500)
	if err != nil || x != y {
		t.Errorf("decoded window answer %v (err %v) != %v", y, err, x)
	}
	// Decoded sketch merges with a live coordinated one.
	b, _ := NewWindow(opts)
	for ts := uint64(1); ts <= 3000; ts++ {
		if err := b.Add(ts%900+10000, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := got.Merge(b); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWindow([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
	var w WindowSketch
	if err := w.UnmarshalBinary(nil); err == nil {
		t.Error("nil decoded")
	}
}
