package unionstream_test

import (
	"fmt"
	"log"

	"repro/unionstream"
)

// Example demonstrates the core workflow: two parties sketch their own
// streams with shared options, exchange one message, and estimate over
// the union. The streams here are tiny, so the estimates are exact —
// the sample has not overflowed.
func Example() {
	opts := unionstream.Options{Epsilon: 0.1, Delta: 0.05, Seed: 7}
	a, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := unionstream.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	for x := uint64(0); x < 30; x++ {
		a.Add(x)
	}
	for x := uint64(20); x < 50; x++ {
		b.Add(x)
		b.Add(x) // duplicates are free
	}
	msg, err := b.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	remote, err := unionstream.Decode(msg)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Merge(remote); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct in union: %.0f\n", a.DistinctCount())
	// Output:
	// distinct in union: 50
}

// ExampleSketch_CountWhere shows query-time predicate estimation: the
// predicate is chosen after the stream ended.
func ExampleSketch_CountWhere() {
	s, err := unionstream.New(unionstream.Options{Epsilon: 0.1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for x := uint64(0); x < 100; x++ {
		s.Add(x)
	}
	even := s.CountWhere(func(label uint64) bool { return label%2 == 0 })
	fmt.Printf("distinct even labels: %.0f\n", even)
	// Output:
	// distinct even labels: 50
}

// ExampleSketch_SumDistinct shows duplicate-insensitive sums: each
// label carries a fixed value and is counted once however often it
// appears.
func ExampleSketch_SumDistinct() {
	s, err := unionstream.New(unionstream.Options{Epsilon: 0.1, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ { // three duplicate passes
		for x := uint64(1); x <= 10; x++ {
			s.AddValued(x, x) // label x carries value x
		}
	}
	fmt.Printf("sum over distinct labels: %.0f\n", s.SumDistinct())
	// Output:
	// sum over distinct labels: 55
}

// ExampleSketch_Jaccard shows the set-operation extension between two
// coordinated sketches.
func ExampleSketch_Jaccard() {
	opts := unionstream.Options{Epsilon: 0.1, Seed: 11}
	a, _ := unionstream.New(opts)
	b, _ := unionstream.New(opts)
	for x := uint64(0); x < 40; x++ {
		a.Add(x)
	}
	for x := uint64(20); x < 60; x++ {
		b.Add(x)
	}
	j, err := a.Jaccard(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jaccard: %.3f\n", j) // 20 shared / 60 union
	// Output:
	// jaccard: 0.333
}

// ExampleWindowSketch shows sliding-window distinct counting.
func ExampleWindowSketch() {
	w, err := unionstream.NewWindow(unionstream.WindowOptions{Epsilon: 0.1, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	for ts := uint64(1); ts <= 100; ts++ {
		if err := w.Add(ts%20, ts); err != nil { // 20 labels cycling
			log.Fatal(err)
		}
	}
	last10, err := w.DistinctLast(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct in last 10 ticks: %.0f\n", last10)
	// Output:
	// distinct in last 10 ticks: 10
}
