package unionstream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/window"
)

// WindowOptions configures a WindowSketch. The zero value targets
// ε = 0.05 with seed 0 and the full level range.
type WindowOptions struct {
	// Epsilon is the target relative error in (0, 1]; 0 means 0.05.
	Epsilon float64
	// Seed is the shared coordination seed.
	Seed uint64
	// Capacity overrides the per-level sample size (advanced; 0 =
	// derive from Epsilon).
	Capacity int
	// MaxLevel bounds retained levels (advanced; 0 = full range).
	// Lower values save memory when the windowed distinct rate is
	// known to be far below 2^MaxLevel · Capacity.
	MaxLevel int
}

// WindowSketch estimates distinct counts over sliding timestamp
// windows of one or more coordinated streams — the extension of the
// SPAA 2001 scheme that its authors developed next (SPAA 2002).
// Timestamps must be non-decreasing per stream; sketches built with
// equal options merge into a sketch of the union.
type WindowSketch struct {
	sk *window.Sketch
}

// NewWindow returns an empty sliding-window sketch.
func NewWindow(opts WindowOptions) (*WindowSketch, error) {
	eps := opts.Epsilon
	if eps == 0 {
		eps = 0.05
	}
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("unionstream: Epsilon %v outside (0, 1]", opts.Epsilon)
	}
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = core.CapacityForEpsilon(eps)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("unionstream: Capacity %d must be positive", opts.Capacity)
	}
	if opts.MaxLevel < 0 || opts.MaxLevel > 61 {
		return nil, fmt.Errorf("unionstream: MaxLevel %d outside [0, 61]", opts.MaxLevel)
	}
	return &WindowSketch{sk: window.New(window.Config{
		Capacity: capacity,
		Seed:     opts.Seed,
		MaxLevel: opts.MaxLevel,
	})}, nil
}

// Add observes label at timestamp ts (non-decreasing per stream).
func (w *WindowSketch) Add(label, ts uint64) error {
	return w.sk.Process(label, ts)
}

// DistinctSince estimates the number of distinct labels with
// timestamp ≥ start. It returns window.ErrUncovered (via errors.Is) if
// the retained state cannot certify a window that old.
func (w *WindowSketch) DistinctSince(start uint64) (float64, error) {
	return w.sk.EstimateDistinctSince(start)
}

// DistinctLast estimates the distinct count among the most recent
// width timestamp units.
func (w *WindowSketch) DistinctLast(width uint64) (float64, error) {
	return w.sk.EstimateDistinctWindow(width)
}

// LastTimestamp returns the latest timestamp observed (0 before any).
func (w *WindowSketch) LastTimestamp() uint64 { return w.sk.LastTimestamp() }

// Merge folds other into w; afterwards w answers window queries over
// the union of both streams. Options must match exactly.
func (w *WindowSketch) Merge(other *WindowSketch) error {
	if other == nil {
		return fmt.Errorf("unionstream: merge with nil window sketch: %w", ErrMismatch)
	}
	return w.sk.Merge(other.sk)
}

// MemoryEntries reports the retained (label, timestamp) entries — the
// sketch's space in entries, bounded by levels × capacity.
func (w *WindowSketch) MemoryEntries() int { return w.sk.MemoryEntries() }

// MarshalBinary encodes the sketch — the one message a party sends in
// the distributed sliding-window model.
func (w *WindowSketch) MarshalBinary() ([]byte, error) {
	return w.sk.MarshalBinary()
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing w's state.
func (w *WindowSketch) UnmarshalBinary(data []byte) error {
	sk, err := window.Decode(data)
	if err != nil {
		return err
	}
	w.sk = sk
	return nil
}

// DecodeWindow decodes a transmitted window sketch into a fresh value.
func DecodeWindow(data []byte) (*WindowSketch, error) {
	sk, err := window.Decode(data)
	if err != nil {
		return nil, err
	}
	return &WindowSketch{sk: sk}, nil
}

// SizeBytes returns the wire size of the sketch.
func (w *WindowSketch) SizeBytes() int { return w.sk.SizeBytes() }
