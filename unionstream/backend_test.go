package unionstream_test

import (
	"math"
	"testing"

	"repro/unionstream"
)

func TestBackendsRegistry(t *testing.T) {
	have := map[string]bool{}
	for _, name := range unionstream.Backends() {
		have[name] = true
	}
	for _, name := range []string{"gt", "fm", "ams", "bjkst", "kmv", "hll", "window", "exact"} {
		if !have[name] {
			t.Errorf("backend %q missing from Backends() = %v", name, unionstream.Backends())
		}
	}
	if _, err := unionstream.NewBackend("nope", 0.1, 1); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := unionstream.NewBackend("gt", 1.5, 1); err == nil {
		t.Error("epsilon 1.5 accepted")
	}
}

// TestBackendUnionEstimates: every backend must estimate the union of
// two overlapping streams through the same Add/Merge/DistinctCount
// surface, and its envelope must round-trip through DecodeBackend.
func TestBackendUnionEstimates(t *testing.T) {
	const truth = 3000 // labels 0..2999 across two overlapping parties
	for _, name := range unionstream.Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := unionstream.NewBackend(name, 0.1, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := unionstream.NewBackend(name, 0.1, 7)
			if err != nil {
				t.Fatal(err)
			}
			for x := uint64(0); x < 2000; x++ {
				a.AddValued(x, 2)
			}
			for x := uint64(1000); x < 3000; x++ {
				b.AddValued(x, 2)
			}

			// Ship b to a, as a coordinator would receive it.
			env, err := b.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := unionstream.DecodeBackend(env)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Name() != name || dec.Seed() != b.Seed() {
				t.Fatalf("decoded identity %s/%d, want %s/%d", dec.Name(), dec.Seed(), name, b.Seed())
			}
			if err := a.Merge(dec); err != nil {
				t.Fatal(err)
			}

			est := a.DistinctCount()
			// AMS is constant-factor only; everything else should land
			// well within 30% at these sizes.
			tol := 0.3
			if name == "ams" {
				tol = 7.0
			}
			if rel := math.Abs(est-truth) / truth; rel > tol {
				t.Errorf("distinct %.0f, truth %d (rel %.2f > %.2f)", est, truth, rel, tol)
			}

			// Sum support is capability-gated: a real value for kinds
			// that track values, NaN (never a wrong number) otherwise.
			if sum := a.SumDistinct(); !math.IsNaN(sum) {
				if rel := math.Abs(sum-2*truth) / (2 * truth); rel > tol {
					t.Errorf("sum %.0f, truth %d (rel %.2f)", sum, 2*truth, rel)
				}
			}
		})
	}
}

func TestBackendMismatchTyped(t *testing.T) {
	a, err := unionstream.NewBackend("kmv", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := unionstream.NewBackend("kmv", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); !unionstream.IsMismatch(err) {
		t.Errorf("cross-seed merge: err = %v, want IsMismatch", err)
	}
	c, err := unionstream.NewBackend("fm", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("cross-kind merge succeeded")
	}
	if err := a.Merge(nil); !unionstream.IsMismatch(err) {
		t.Errorf("nil merge: err = %v, want IsMismatch", err)
	}
}
