// Package unionstream is the public API of this repository: an
// implementation of Gibbons & Tirthapura's coordinated sampling scheme
// for estimating simple functions — distinct counts, predicate counts,
// and duplicate-insensitive sums — over the set union of one or more
// data streams (SPAA 2001).
//
// # Usage model
//
// Create one Sketch per stream/party, all with the same Options
// (in particular the same Seed — that is the only coordination the
// scheme needs). Feed each party its own stream with Add/AddValued.
// When the streams end, serialize the sketches with MarshalBinary,
// ship them anywhere, and Merge them; the merged sketch answers
// queries about the union with relative error ε and failure
// probability δ, using O(log(1/δ)/ε²·log m) bits of space and
// communication per party.
//
//	opts := unionstream.Options{Epsilon: 0.05, Delta: 0.01, Seed: 42}
//	a, _ := unionstream.New(opts) // party A
//	b, _ := unionstream.New(opts) // party B
//	... a.Add(flowID) on A's stream, b.Add(flowID) on B's ...
//	_ = a.Merge(b)
//	fmt.Println(a.DistinctCount()) // distinct flows across both links
//
// Duplicates within or across streams never distort the answers: the
// sketch state is a pure function of the distinct label set.
package unionstream

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/sketch"
)

// Errors returned by this package. ErrMismatch wraps merge/decode
// incompatibilities; ErrCorrupt wraps malformed encodings.
var (
	ErrMismatch = core.ErrMismatch
	ErrCorrupt  = core.ErrCorrupt
)

// Options configures a Sketch. The zero value is usable: it targets
// ε = 0.05, δ = 0.01, seed 0.
type Options struct {
	// Epsilon is the target relative error in (0, 1]; 0 means 0.05.
	Epsilon float64
	// Delta is the target failure probability in (0, 1); 0 means 0.01.
	Delta float64
	// Seed is the shared coordination seed. All sketches that will
	// ever be merged must use the same seed.
	Seed uint64
	// Capacity overrides the per-copy sample capacity derived from
	// Epsilon (advanced; 0 = derive).
	Capacity int
	// Copies overrides the number of independent copies derived from
	// Delta (advanced; 0 = derive).
	Copies int
}

// resolve fills defaults and validates.
func (o Options) resolve() (core.EstimatorConfig, error) {
	eps := o.Epsilon
	if eps == 0 {
		eps = 0.05
	}
	if eps < 0 || eps > 1 {
		return core.EstimatorConfig{}, fmt.Errorf("unionstream: Epsilon %v outside (0, 1]", o.Epsilon)
	}
	delta := o.Delta
	if delta == 0 {
		delta = 0.01
	}
	if delta < 0 || delta >= 1 {
		return core.EstimatorConfig{}, fmt.Errorf("unionstream: Delta %v outside (0, 1)", o.Delta)
	}
	cfg := core.EstimatorConfig{
		Capacity: o.Capacity,
		Copies:   o.Copies,
		Seed:     o.Seed,
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = core.CapacityForEpsilon(eps)
	}
	if cfg.Capacity < 1 {
		return core.EstimatorConfig{}, fmt.Errorf("unionstream: Capacity %d must be positive", o.Capacity)
	}
	if cfg.Copies == 0 {
		cfg.Copies = core.CopiesForDelta(delta)
	}
	if cfg.Copies < 1 {
		return core.EstimatorConfig{}, fmt.Errorf("unionstream: Copies %d must be positive", o.Copies)
	}
	return cfg, nil
}

// Sketch estimates simple functions on the union of data streams. It
// is not safe for concurrent use; in the distributed model each party
// owns its sketch exclusively.
type Sketch struct {
	est *core.Estimator
}

// New returns an empty sketch for the given options.
func New(opts Options) (*Sketch, error) {
	cfg, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	return &Sketch{est: core.NewEstimator(cfg)}, nil
}

// Add observes one occurrence of a 64-bit label.
func (s *Sketch) Add(label uint64) {
	s.est.Process(label)
}

// AddValued observes a label carrying a fixed integer value, for
// SumDistinct queries. Every occurrence of a label must carry the same
// value; the first retained value wins.
func (s *Sketch) AddValued(label, value uint64) {
	s.est.ProcessWeighted(label, value)
}

// AddAll observes a batch of labels, sharding the work across up to
// workers goroutines (workers <= 0 selects GOMAXPROCS). The resulting
// sketch is bit-for-bit identical to calling Add on each label in
// order — the multicore dividend of the scheme's merge-equals-union
// property.
func (s *Sketch) AddAll(labels []uint64, workers int) {
	s.est.ProcessSlice(labels, workers)
}

// AddBytes observes a byte-string label, mapped to uint64 with FNV-1a.
// The mapping is stable across processes, preserving coordination.
// (FNV collisions, ~n²/2⁶⁴, are negligible at sketchable scales.)
func (s *Sketch) AddBytes(label []byte) {
	h := fnv.New64a()
	h.Write(label)
	s.est.Process(h.Sum64())
}

// AddString observes a string label; see AddBytes.
func (s *Sketch) AddString(label string) {
	h := fnv.New64a()
	h.Write([]byte(label))
	s.est.Process(h.Sum64())
}

// Merge folds other into s. Both sketches must have been created with
// identical resolved options (same seed, capacity, copies); otherwise
// Merge returns an error wrapping ErrMismatch and leaves s unchanged.
// After a successful merge, s answers queries over the union of both
// streams.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("unionstream: merge with nil sketch: %w", ErrMismatch)
	}
	return s.est.Merge(other.est)
}

// DistinctCount estimates the number of distinct labels in the union
// of all streams merged into s.
func (s *Sketch) DistinctCount() float64 {
	return s.est.EstimateDistinct()
}

// SumDistinct estimates the sum of values over distinct labels.
func (s *Sketch) SumDistinct() float64 {
	return s.est.EstimateSum()
}

// CountWhere estimates the number of distinct labels satisfying pred.
// The error guarantee degrades with the predicate's selectivity, as
// for any sample-based estimator.
func (s *Sketch) CountWhere(pred func(label uint64) bool) float64 {
	return s.est.EstimateCountWhere(pred)
}

// SumWhere estimates the sum of values over distinct labels satisfying
// pred.
func (s *Sketch) SumWhere(pred func(label uint64) bool) float64 {
	return s.est.EstimateSumWhere(pred)
}

// MarshalBinary encodes the sketch for transmission — this is the one
// message a party sends in the paper's model.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	return s.est.MarshalBinary()
}

// Envelope encodes the sketch as a self-describing registry envelope
// (kind "gt"), the format unionstreamd absorbs; DecodeBackend opens
// it. MarshalBinary remains the bare estimator encoding.
func (s *Sketch) Envelope() ([]byte, error) {
	return sketch.Envelope(s.est)
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary,
// replacing s's state.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	var e core.Estimator
	if err := e.UnmarshalBinary(data); err != nil {
		return err
	}
	s.est = &e
	return nil
}

// Decode decodes a transmitted sketch into a fresh value.
func Decode(data []byte) (*Sketch, error) {
	s := &Sketch{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeEnvelope decodes a registry envelope produced by Envelope. The
// envelope must hold a "gt" sketch; use DecodeBackend to open
// envelopes of any kind.
func DecodeEnvelope(data []byte) (*Sketch, error) {
	sk, err := sketch.Open(data)
	if err != nil {
		return nil, err
	}
	est, ok := sk.(*core.Estimator)
	if !ok {
		return nil, fmt.Errorf("unionstream: envelope holds a %q sketch, not the paper's estimator: %w",
			sk.Kind(), ErrMismatch)
	}
	return &Sketch{est: est}, nil
}

// SizeBytes returns the wire size of the sketch: the per-party
// communication cost.
func (s *Sketch) SizeBytes() int { return s.est.SizeBytes() }

// Reset clears the sketch, keeping its configuration (and hence its
// coordination seed).
func (s *Sketch) Reset() { s.est.Reset() }

// Clone returns an independent deep copy.
func (s *Sketch) Clone() *Sketch { return &Sketch{est: s.est.Clone()} }

// Epsilon returns the per-copy relative-error target implied by the
// sketch's capacity.
func (s *Sketch) Epsilon() float64 {
	return core.EpsilonForCapacity(s.est.Config().Capacity)
}

// Copies returns the number of independent sampler copies (the
// δ-amplification factor).
func (s *Sketch) Copies() int { return s.est.Copies() }

// IsMismatch reports whether err indicates incompatible sketches —
// from Sketch.Merge or Backend.Merge of any kind.
func IsMismatch(err error) bool { return errors.Is(err, sketch.ErrMismatch) }

// Set operations between two coordinated sketches — the extension
// direction this paper's successors (theta/KMV sketches) made
// standard. All three require the sketches to share options
// (ErrMismatch otherwise) and leave both operands unchanged.

// IntersectionCount estimates the number of distinct labels common to
// both sketched streams. The guarantee degrades when the intersection
// is much smaller than either stream (the selectivity effect, E9).
func (s *Sketch) IntersectionCount(other *Sketch) (float64, error) {
	if other == nil {
		return 0, fmt.Errorf("unionstream: intersection with nil sketch: %w", ErrMismatch)
	}
	return s.est.EstimateIntersection(other.est)
}

// DifferenceCount estimates the number of distinct labels seen by s's
// stream but not other's.
func (s *Sketch) DifferenceCount(other *Sketch) (float64, error) {
	if other == nil {
		return 0, fmt.Errorf("unionstream: difference with nil sketch: %w", ErrMismatch)
	}
	return s.est.EstimateDifference(other.est)
}

// Jaccard estimates the Jaccard similarity of the two sketched
// distinct label sets, in [0, 1].
func (s *Sketch) Jaccard(other *Sketch) (float64, error) {
	if other == nil {
		return 0, fmt.Errorf("unionstream: jaccard with nil sketch: %w", ErrMismatch)
	}
	return s.est.EstimateJaccard(other.est)
}
